"""The elimination procedure for hierarchical queries (Proposition 5.1).

A SJF-BCQ is hierarchical if and only if repeatedly applying the two rules
below reduces it to a single nullary atom ``Q() :- R()``:

* **Rule 1** — a variable ``Y`` occurring in exactly one atom ``R(X)`` is
  projected away: ``R(X)`` becomes ``R'(X \\ {Y})``.
* **Rule 2** — two distinct atoms ``R1(X)`` and ``R2(X)`` over the *same*
  variable set are merged into a single fresh atom ``R'(X)``.

The procedure mirrors GYO elimination for acyclic queries, with a stricter
Rule 2 (equality of variable sets instead of containment).  Algorithm 1 of the
paper executes exactly this trace, replacing Rule 1 with a ⊕-aggregation and
Rule 2 with a ⊗-join over a 2-monoid; the trace objects produced here are
therefore the "query plans" of the whole library.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from itertools import combinations
from typing import Callable, Iterator, Mapping, Union

from repro.exceptions import NotHierarchicalError, QueryError
from repro.query.atoms import Atom, Variable
from repro.query.bcq import BCQ


@dataclass(frozen=True)
class Rule1Step:
    """Project the private variable *variable* out of *source*, yielding *target*.

    ``target.variables`` is ``source.variables`` with *variable* removed and
    order otherwise preserved.
    """

    source: Atom
    variable: Variable
    target: Atom

    def __str__(self) -> str:
        return f"Rule1: {self.source} --[⊕ over {self.variable}]--> {self.target}"


@dataclass(frozen=True)
class Rule2Step:
    """Merge duplicate-variable-set atoms *first* and *second* into *target*.

    The two source atoms share the same variable *set* but may list the
    variables in different orders; *target* uses the order of *first*.
    """

    first: Atom
    second: Atom
    target: Atom

    def __str__(self) -> str:
        return f"Rule2: {self.first} ⊗ {self.second} --> {self.target}"


EliminationStep = Union[Rule1Step, Rule2Step]

Policy = Callable[[list[Rule1Step], list[Rule2Step]], EliminationStep]
"""A policy picks the next step among the currently applicable ones."""


@dataclass(frozen=True)
class EliminationTrace:
    """The full record of an elimination run.

    Attributes
    ----------
    query:
        The original query.
    steps:
        The steps applied, in order.
    final_query:
        The query left when no rule applies (``Q() :- R()`` on success).
    success:
        True iff the procedure reduced the query to a single nullary atom —
        equivalently (Proposition 5.1), iff the query is hierarchical.
    """

    query: BCQ
    steps: tuple[EliminationStep, ...]
    final_query: BCQ
    success: bool

    @property
    def final_relation(self) -> str:
        """Relation symbol of the terminal nullary atom (successful runs only)."""
        if not self.success:
            raise NotHierarchicalError(
                f"elimination of {self.query} got stuck at {self.final_query}"
            )
        return self.final_query.atoms[0].relation

    def intermediate_queries(self) -> Iterator[BCQ]:
        """Yield the query after each step (ending with :attr:`final_query`)."""
        current = self.query
        for step in self.steps:
            current = apply_step(current, step)
            yield current

    def __str__(self) -> str:
        lines = [str(self.query)]
        current = self.query
        for step in self.steps:
            current = apply_step(current, step)
            rule = "Rule 1" if isinstance(step, Rule1Step) else "Rule 2"
            lines.append(f"  ({rule}) {current}")
        lines.append("  (Done!)" if self.success else "  (Stuck!)")
        return "\n".join(lines)


def applicable_rule1_steps(query: BCQ, fresh: "_FreshNames") -> list[Rule1Step]:
    """All Rule 1 moves currently applicable to *query*."""
    occurrences: dict[Variable, list[Atom]] = {}
    for atom in query.atoms:
        for variable in atom.variables:
            occurrences.setdefault(variable, []).append(atom)
    steps = []
    for variable in sorted(occurrences):
        atoms = occurrences[variable]
        if len(atoms) == 1:
            source = atoms[0]
            target = source.without(variable, fresh.derive(source.relation))
            steps.append(Rule1Step(source=source, variable=variable, target=target))
    return steps


def applicable_rule2_steps(query: BCQ, fresh: "_FreshNames") -> list[Rule2Step]:
    """All Rule 2 moves currently applicable to *query*.

    Atoms are bucketed by variable set first, so the cost is linear in the
    atom count plus the number of applicable pairs — not O(atoms²) pairwise
    frozenset comparisons.
    """
    by_variable_set: dict[frozenset[Variable], list[Atom]] = {}
    for atom in query.atoms:
        by_variable_set.setdefault(atom.variable_set, []).append(atom)
    steps = []
    for atoms in by_variable_set.values():
        if len(atoms) < 2:
            continue
        for first, second in combinations(atoms, 2):
            target = first.renamed(fresh.derive(first.relation))
            steps.append(Rule2Step(first=first, second=second, target=target))
    return steps


def apply_step(query: BCQ, step: EliminationStep) -> BCQ:
    """Apply a single elimination step to *query* and return the new query."""
    if isinstance(step, Rule1Step):
        return query.replace_atom(step.source, step.target)
    if isinstance(step, Rule2Step):
        return query.merge_atoms(step.first, step.second, step.target)
    raise QueryError(f"unknown elimination step {step!r}")


_FRESH_SUFFIX = re.compile(r"(?:'+|'\d+)+$")


class _FreshNames:
    """Generates fresh relation symbols by priming existing names (R → R').

    Short derivation chains keep the paper's pretty names (R → R' → R'' →
    R'''); beyond that — or on a collision — the generator falls back to
    counter suffixes on the unprimed stem (R'4, R'5, …).  This keeps name
    lengths O(log chain) instead of the one-quote-per-step priming that made
    long elimination chains quadratic in total name size.
    """

    def __init__(self, used: set[str]) -> None:
        self._used = set(used)
        self._counters: dict[str, int] = {}

    def derive(self, base: str) -> str:
        stem = _FRESH_SUFFIX.sub("", base) or base
        candidate = base + "'"
        while len(candidate) - len(stem) <= 3:
            if candidate not in self._used:
                self._used.add(candidate)
                return candidate
            candidate += "'"
        count = self._counters.get(stem, 4)
        candidate = f"{stem}'{count}"
        while candidate in self._used:
            count += 1
            candidate = f"{stem}'{count}"
        self._counters[stem] = count + 1
        self._used.add(candidate)
        return candidate


def _policy_rule1_first(r1: list[Rule1Step], r2: list[Rule2Step]) -> EliminationStep:
    return r1[0] if r1 else r2[0]


def _policy_rule2_first(r1: list[Rule1Step], r2: list[Rule2Step]) -> EliminationStep:
    return r2[0] if r2 else r1[0]


def make_random_policy(seed: int = 0) -> Policy:
    """A policy choosing uniformly among all applicable steps (for E10)."""
    rng = random.Random(seed)

    def pick(r1: list[Rule1Step], r2: list[Rule2Step]) -> EliminationStep:
        candidates: list[EliminationStep] = [*r1, *r2]
        return rng.choice(candidates)

    return pick


def make_min_support_policy(
    relation_sizes: Mapping[str, int] | None = None,
    *,
    union_merges: bool = False,
) -> Policy:
    """A cost-based policy minimizing the estimated intermediate support.

    Parameters
    ----------
    relation_sizes:
        Support sizes of the input relations by relation symbol, when known
        (``run_algorithm`` supplies them from the annotated database).
        Unknown relations count as size 1, which degrades gracefully to
        rule-1-first behaviour when no sizes are available.
    union_merges:
        Estimate a Rule 2 merge's output as ``|R1| + |R2|`` (the
        union-of-supports bound, required for non-annihilating monoids such
        as Shapley's) instead of the annihilating intersection bound
        ``min(|R1|, |R2|)``.

    Rule 1 output is estimated by its source size (projection never grows the
    support — Lemma 6.6).  The chosen step's estimate is recorded as the size
    of its freshly-named target so later rounds see derived sizes.  Ties
    break toward Rule 1 steps in variable order, keeping the policy
    deterministic.
    """
    sizes: dict[str, int] = dict(relation_sizes or {})

    def size_of(atom: Atom) -> int:
        return sizes.get(atom.relation, 1)

    def estimate(step: EliminationStep) -> int:
        if isinstance(step, Rule1Step):
            return size_of(step.source)
        first, second = size_of(step.first), size_of(step.second)
        return first + second if union_merges else min(first, second)

    def pick(r1: list[Rule1Step], r2: list[Rule2Step]) -> EliminationStep:
        candidates: list[EliminationStep] = [*r1, *r2]
        best = min(candidates, key=estimate)
        sizes[best.target.relation] = estimate(best)
        return best

    return pick


POLICIES: dict[str, Policy] = {
    "rule1_first": _policy_rule1_first,
    "rule2_first": _policy_rule2_first,
}

#: Policies that need per-run state or data statistics; resolved per call.
POLICY_FACTORIES: dict[str, Callable[..., Policy]] = {
    "min_support": make_min_support_policy,
}


def policy_names() -> list[str]:
    """All accepted policy strings (for error messages and CLI choices)."""
    return sorted([*POLICIES, *POLICY_FACTORIES])


def resolve_policy(
    policy: Policy | str,
    relation_sizes: Mapping[str, int] | None = None,
    union_merges: bool = False,
) -> Policy:
    """Turn a policy name into a policy function (pass functions through)."""
    if not isinstance(policy, str):
        return policy
    if policy in POLICIES:
        return POLICIES[policy]
    if policy in POLICY_FACTORIES:
        return POLICY_FACTORIES[policy](
            relation_sizes, union_merges=union_merges
        )
    raise QueryError(
        f"unknown elimination policy {policy!r}; "
        f"expected one of {policy_names()}"
    )


def eliminate(
    query: BCQ,
    policy: Policy | str = "rule1_first",
    relation_sizes: Mapping[str, int] | None = None,
    union_merges: bool = False,
) -> EliminationTrace:
    """Run the elimination procedure of Proposition 5.1 on *query*.

    Parameters
    ----------
    query:
        A SJF-BCQ (self-join-freeness is enforced).
    policy:
        Which applicable step to take when several exist.  All policies reach
        the same success/failure verdict (Proposition 5.1); they may produce
        different traces, which experiment E10 ablates.
    relation_sizes / union_merges:
        Statistics forwarded to cost-based policy factories (currently
        ``"min_support"``); ignored for plain policies.

    Returns
    -------
    EliminationTrace
        With ``success=True`` iff *query* is hierarchical.
    """
    query.require_self_join_free()
    policy_fn = resolve_policy(policy, relation_sizes, union_merges)

    fresh = _FreshNames({atom.relation for atom in query.atoms})
    current = query
    steps: list[EliminationStep] = []
    while not current.is_boolean_true_form:
        rule1 = applicable_rule1_steps(current, fresh)
        rule2 = applicable_rule2_steps(current, fresh)
        if not rule1 and not rule2:
            return EliminationTrace(query, tuple(steps), current, success=False)
        step = policy_fn(rule1, rule2)
        steps.append(step)
        current = apply_step(current, step)
    return EliminationTrace(query, tuple(steps), current, success=True)


def is_hierarchical_by_elimination(query: BCQ) -> bool:
    """Decide the hierarchical property via the elimination procedure.

    Property tests check this agrees with the pairwise ``at``-set definition
    in :mod:`repro.query.hierarchy` on random queries.
    """
    return eliminate(query).success
