"""GYO elimination and acyclicity of conjunctive queries.

The paper contrasts its elimination procedure (Proposition 5.1) with the
classical GYO procedure for *acyclic* queries: GYO's Rule 2 merges an atom
into any atom whose variables *contain* it, whereas the hierarchical
procedure requires *equality* of variable sets.  Consequently every
hierarchical query is acyclic but not vice versa (``q_nh`` is acyclic and not
hierarchical).  We implement GYO so tests and benchmarks can exhibit this
strict inclusion.
"""

from __future__ import annotations

from repro.query.bcq import BCQ


def is_acyclic(query: BCQ) -> bool:
    """Decide α-acyclicity of *query* via GYO ear removal.

    The classical loop: repeatedly (a) drop variables occurring in a single
    hyperedge, and (b) drop hyperedges contained in another hyperedge, until
    fixpoint.  The query is acyclic iff at most one (possibly empty)
    hyperedge remains.
    """
    edges = [set(atom.variable_set) for atom in query.atoms]
    changed = True
    while changed:
        changed = False
        # (a) remove variables private to one edge
        counts: dict[str, int] = {}
        for edge in edges:
            for variable in edge:
                counts[variable] = counts.get(variable, 0) + 1
        for edge in edges:
            private = {v for v in edge if counts[v] == 1}
            if private:
                edge -= private
                changed = True
        # (b) remove edges contained in another edge
        survivors: list[set[str]] = []
        for i, edge in enumerate(edges):
            absorbed = any(
                (edge <= other and (edge != other or i > j))
                for j, other in enumerate(edges)
                if i != j
            )
            if absorbed:
                changed = True
            else:
                survivors.append(edge)
        edges = survivors
    return len(edges) <= 1
