"""The hierarchical property of SJF-BCQs.

A SJF-BCQ ``Q`` is *hierarchical* when for every two variables ``X`` and ``Y``
one of the following holds (introduction of the paper):

1. ``at(X) ⊆ at(Y)``,
2. ``at(Y) ⊆ at(X)``, or
3. ``at(X) ∩ at(Y) = ∅``,

where ``at(Z)`` is the set of atoms of ``Q`` containing ``Z``.  Hierarchical
queries define the tractability boundary for all three problems the paper
unifies.  Non-hierarchical queries always contain the forbidden pattern
``R(A, X...), S(A, B, Y...), T(B, Z...)`` with ``A ∉ vars(T)`` and
``B ∉ vars(R)``; :func:`find_non_hierarchical_witness` extracts it, which the
hardness reduction of Theorem 4.4 relies on.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.query.atoms import Atom, Variable
from repro.query.bcq import BCQ


@dataclass(frozen=True)
class NonHierarchicalWitness:
    """The forbidden pattern witnessing non-hierarchicality.

    Attributes
    ----------
    variable_a, variable_b:
        The two crossing variables (``A`` and ``B`` in Theorem 4.4).
    atom_r:
        An atom containing ``A`` but not ``B``.
    atom_s:
        An atom containing both ``A`` and ``B``.
    atom_t:
        An atom containing ``B`` but not ``A``.
    """

    variable_a: Variable
    variable_b: Variable
    atom_r: Atom
    atom_s: Atom
    atom_t: Atom


def atom_sets(query: BCQ) -> dict[Variable, frozenset[Atom]]:
    """Return ``at(X)`` for every variable ``X`` of *query*."""
    result: dict[Variable, set[Atom]] = {}
    for atom in query.atoms:
        for variable in atom.variables:
            result.setdefault(variable, set()).add(atom)
    return {variable: frozenset(atoms) for variable, atoms in result.items()}


def find_non_hierarchical_witness(query: BCQ) -> NonHierarchicalWitness | None:
    """Return a witness of non-hierarchicality, or None if *query* is hierarchical.

    The witness is the pattern used by the NP-hardness reduction of
    Theorem 4.4: two variables ``A, B`` and three atoms ``R, S, T`` with
    ``A ∈ R, S``, ``B ∈ S, T``, ``A ∉ T`` and ``B ∉ R``.
    """
    at = atom_sets(query)
    for variable_a, variable_b in combinations(sorted(at), 2):
        at_a, at_b = at[variable_a], at[variable_b]
        shared = at_a & at_b
        if not shared:
            continue
        if at_a <= at_b or at_b <= at_a:
            continue
        atom_r = next(iter(sorted(at_a - at_b)))
        atom_s = next(iter(sorted(shared)))
        atom_t = next(iter(sorted(at_b - at_a)))
        return NonHierarchicalWitness(
            variable_a=variable_a,
            variable_b=variable_b,
            atom_r=atom_r,
            atom_s=atom_s,
            atom_t=atom_t,
        )
    return None


def is_hierarchical(query: BCQ) -> bool:
    """Decide the hierarchical property by the pairwise ``at``-set definition."""
    return find_non_hierarchical_witness(query) is None
