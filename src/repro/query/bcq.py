"""Boolean conjunctive queries (BCQs) and self-join-free BCQs (SJF-BCQs).

A BCQ has the form ``Q() :- R1(X1), ..., Rm(Xm)`` (existential quantifiers are
suppressed, as in the paper).  A BCQ is *self-join-free* when no two atoms
share a relation symbol.  Everything in the paper — and almost everything in
this library — is about SJF-BCQs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.exceptions import NotSelfJoinFreeError, QueryError
from repro.query.atoms import Atom, Variable


@dataclass(frozen=True)
class BCQ:
    """A Boolean conjunctive query over a tuple of atoms.

    Parameters
    ----------
    atoms:
        The atoms of the query body, in a fixed (but semantically irrelevant)
        order.
    name:
        Cosmetic head name used in ``str()`` output; defaults to ``"Q"``.
    """

    atoms: tuple[Atom, ...]
    name: str = "Q"
    _atoms_by_relation: dict[str, Atom] = field(
        init=False, repr=False, compare=False, hash=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        atoms = tuple(self.atoms)
        if not atoms:
            raise QueryError("a BCQ must have at least one atom")
        object.__setattr__(self, "atoms", atoms)
        by_relation: dict[str, Atom] = {}
        for atom in atoms:
            by_relation.setdefault(atom.relation, atom)
        object.__setattr__(self, "_atoms_by_relation", by_relation)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def variables(self) -> frozenset[Variable]:
        """``vars(Q)``: the set of all variables occurring in the query."""
        return frozenset(v for atom in self.atoms for v in atom.variables)

    @property
    def relation_symbols(self) -> tuple[str, ...]:
        """Relation symbols in atom order (with duplicates, if any)."""
        return tuple(atom.relation for atom in self.atoms)

    @property
    def is_self_join_free(self) -> bool:
        """True when no two atoms share a relation symbol."""
        return len(set(self.relation_symbols)) == len(self.atoms)

    @property
    def is_boolean_true_form(self) -> bool:
        """True when the query has the terminal form ``Q() :- R()``."""
        return len(self.atoms) == 1 and self.atoms[0].is_nullary

    def atoms_with(self, variable: Variable) -> tuple[Atom, ...]:
        """``at(Y)``: the atoms of the query in which *variable* occurs."""
        return tuple(atom for atom in self.atoms if atom.contains(variable))

    def atom_for(self, relation: str) -> Atom:
        """Return the (unique, for SJF queries) atom of a relation symbol."""
        try:
            return self._atoms_by_relation[relation]
        except KeyError:
            raise QueryError(f"query has no atom over relation {relation!r}") from None

    def require_self_join_free(self) -> None:
        """Raise :class:`NotSelfJoinFreeError` unless the query is SJF."""
        if not self.is_self_join_free:
            seen: set[str] = set()
            duplicated = sorted(
                {r for r in self.relation_symbols if r in seen or seen.add(r)}
            )
            raise NotSelfJoinFreeError(
                f"query {self} repeats relation symbol(s) {duplicated}"
            )

    # ------------------------------------------------------------------
    # Rewriting (used by the elimination procedure)
    # ------------------------------------------------------------------
    def replace_atom(self, old: Atom, new: Atom) -> BCQ:
        """Return the query with the single atom *old* replaced by *new*."""
        if old not in self.atoms:
            raise QueryError(f"atom {old} is not part of {self}")
        atoms = tuple(new if atom == old else atom for atom in self.atoms)
        return BCQ(atoms, self.name)

    def merge_atoms(self, first: Atom, second: Atom, new: Atom) -> BCQ:
        """Return the query with *first* and *second* replaced by one atom *new*.

        This is the query-level effect of Rule 2 of the elimination procedure:
        only a single copy of *new* is added, keeping the query self-join-free
        (footnote 4 of the paper).
        """
        if first not in self.atoms or second not in self.atoms:
            raise QueryError(f"atoms {first}, {second} are not both part of {self}")
        if first == second:
            raise QueryError("merge_atoms requires two distinct atoms")
        atoms: list[Atom] = []
        replaced = False
        for atom in self.atoms:
            if atom == first:
                atoms.append(new)
                replaced = True
            elif atom == second:
                continue
            else:
                atoms.append(atom)
        assert replaced
        return BCQ(tuple(atoms), self.name)

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __iter__(self) -> Iterator[Atom]:
        return iter(self.atoms)

    def __len__(self) -> int:
        return len(self.atoms)

    def __str__(self) -> str:
        body = " ∧ ".join(str(atom) for atom in self.atoms)
        return f"{self.name}() :- {body}"


def make_query(
    atom_specs: Iterable[tuple[str, Iterable[Variable]]], name: str = "Q"
) -> BCQ:
    """Build a BCQ from ``(relation, variables)`` pairs.

    Example
    -------
    >>> q = make_query([("R", "AB"), ("S", "AC")])
    >>> str(q)
    'Q() :- R(A, B) ∧ S(A, C)'
    """
    atoms = tuple(Atom(relation, tuple(variables)) for relation, variables in atom_specs)
    return BCQ(atoms, name)
