"""Variable trees for hierarchical queries (Proposition 5.5).

A *connected* SJF-BCQ is hierarchical iff there is a rooted tree whose nodes
are exactly ``vars(Q)`` such that the variable set of every atom is exactly
the set of variables on some root-path.  For disconnected queries we build one
tree per connected component (a forest).

The tree makes the hierarchy structure explicit and gives an alternative
hierarchicality test, cross-checked against the other two definitions in the
property tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.query.atoms import Atom, Variable
from repro.query.bcq import BCQ
from repro.query.components import connected_components
from repro.query.hierarchy import atom_sets


@dataclass(frozen=True)
class VariableTree:
    """A rooted tree over the variables of one connected component.

    Attributes
    ----------
    root:
        The root variable (occurs in every atom of the component).
    parent:
        Mapping child → parent for every non-root variable.
    """

    root: Variable
    parent: dict[Variable, Variable] = field(default_factory=dict)

    @property
    def variables(self) -> frozenset[Variable]:
        return frozenset(self.parent) | {self.root}

    def path_to_root(self, variable: Variable) -> tuple[Variable, ...]:
        """Variables on the path from *variable* up to (and including) the root."""
        path = [variable]
        while path[-1] != self.root:
            path.append(self.parent[path[-1]])
        return tuple(path)

    def children(self, variable: Variable) -> tuple[Variable, ...]:
        return tuple(sorted(c for c, p in self.parent.items() if p == variable))

    def depth(self, variable: Variable) -> int:
        return len(self.path_to_root(variable)) - 1


@dataclass(frozen=True)
class VariableForest:
    """One :class:`VariableTree` per connected component that has variables."""

    trees: tuple[VariableTree, ...]

    @property
    def variables(self) -> frozenset[Variable]:
        return frozenset(v for tree in self.trees for v in tree.variables)


def build_variable_forest(query: BCQ) -> VariableForest | None:
    """Build the Proposition 5.5 forest for *query*, or None if non-hierarchical."""
    trees = []
    for component in connected_components(query):
        if not component.variables:
            continue
        tree = _build_component_tree(component)
        if tree is None:
            return None
        trees.append(tree)
    return VariableForest(tuple(trees))


def _build_component_tree(component: BCQ) -> VariableTree | None:
    """Build the variable tree of a connected component with ≥1 variable."""
    at = atom_sets(component)
    all_atoms = frozenset(component.atoms)
    order = _containment_order(at, all_atoms)
    if order is None:
        return None
    root = order[0]
    parent: dict[Variable, Variable] = {}
    # Variables sorted by strictly decreasing |at(X)| (ties chained
    # deterministically) form root-paths: each variable's parent is the last
    # previous variable whose at-set contains its own.
    for index in range(1, len(order)):
        child = order[index]
        candidate = None
        for previous in reversed(order[:index]):
            if at[child] <= at[previous]:
                candidate = previous
                break
        if candidate is None:
            return None
        parent[child] = candidate
    tree = VariableTree(root=root, parent=parent)
    if not verify_variable_tree(component, tree):
        return None
    return tree


def _containment_order(
    at: dict[Variable, frozenset[Atom]], all_atoms: frozenset[Atom]
) -> list[Variable] | None:
    """Order variables by decreasing at-set size; the first must hit all atoms."""
    order = sorted(at, key=lambda v: (-len(at[v]), v))
    if at[order[0]] != all_atoms:
        # A connected hierarchical query always has a variable present in
        # every atom; its absence certifies non-hierarchicality.
        return None
    return order


def verify_variable_tree(component: BCQ, tree: VariableTree) -> bool:
    """Check the Proposition 5.5 condition: every atom is exactly a root-path."""
    if tree.variables != component.variables:
        return False
    root_paths = {
        frozenset(tree.path_to_root(variable)) for variable in tree.variables
    }
    return all(
        atom.variable_set in root_paths
        for atom in component.atoms
        if atom.variables
    )


def is_hierarchical_by_tree(query: BCQ) -> bool:
    """Decide hierarchicality by attempting the Proposition 5.5 construction."""
    return build_variable_forest(query) is not None
