"""A small text parser for Boolean conjunctive queries.

Accepted syntax (whitespace-insensitive)::

    Q() :- R(A, B), S(A, C), T(A, C, D)
    Q :- R(A,B) & S(A,C)
    R(A,B), S(A,C)                      # head may be omitted

Atom separators may be ``,``, ``&``, ``&&``, ``∧`` or the literal word
``and``.  Nullary atoms are written ``R()``.
"""

from __future__ import annotations

import re

from repro.exceptions import ParseError
from repro.query.atoms import Atom
from repro.query.bcq import BCQ

_ATOM_RE = re.compile(r"\s*([A-Za-z_][A-Za-z_0-9']*)\s*\(([^()]*)\)\s*")
_HEAD_RE = re.compile(r"^\s*([A-Za-z_][A-Za-z_0-9']*)\s*(\(\s*\))?\s*:-")
_SEPARATOR_RE = re.compile(r"\s*(?:,|&&|&|∧|\band\b)\s*")
_IDENT_RE = re.compile(r"^[A-Za-z_][A-Za-z_0-9']*$")


def parse_query(text: str, name: str | None = None) -> BCQ:
    """Parse *text* into a :class:`~repro.query.bcq.BCQ`.

    Parameters
    ----------
    text:
        The query string, with or without a ``Q() :-`` head.
    name:
        Overrides the head name; defaults to the parsed head or ``"Q"``.

    Raises
    ------
    ParseError
        If the string is not a syntactically valid conjunctive query.
    """
    if not text or not text.strip():
        raise ParseError("empty query string")
    body = text
    head_name = "Q"
    head_match = _HEAD_RE.match(text)
    if head_match:
        head_name = head_match.group(1)
        body = text[head_match.end():]
    elif ":-" in text:
        raise ParseError(f"malformed query head in {text!r}")

    atoms: list[Atom] = []
    position = 0
    body = body.strip()
    if not body:
        raise ParseError(f"query {text!r} has an empty body")
    while position < len(body):
        atom_match = _ATOM_RE.match(body, position)
        if not atom_match:
            raise ParseError(
                f"expected an atom at position {position} of {body!r}"
            )
        relation, inner = atom_match.group(1), atom_match.group(2)
        atoms.append(Atom(relation, _parse_variables(inner, relation)))
        position = atom_match.end()
        if position >= len(body):
            break
        separator = _SEPARATOR_RE.match(body, position)
        if not separator or separator.end() == position:
            raise ParseError(
                f"expected an atom separator at position {position} of {body!r}"
            )
        position = separator.end()
        if position >= len(body):
            raise ParseError(f"trailing separator in {body!r}")
    return BCQ(tuple(atoms), name or head_name)


def _parse_variables(inner: str, relation: str) -> tuple[str, ...]:
    """Parse the comma-separated variable list inside an atom."""
    inner = inner.strip()
    if not inner:
        return ()
    variables = tuple(part.strip() for part in inner.split(","))
    for variable in variables:
        if not _IDENT_RE.match(variable):
            raise ParseError(
                f"invalid variable {variable!r} in atom {relation}({inner})"
            )
    return variables
