"""Metric primitives: counters, gauges, histograms, and their registry.

The observability layer's data model follows the Prometheus one — a
*metric family* has a name, a help string, a type, and a tuple of label
names; each distinct label-value assignment owns one *child* holding the
actual numbers — but the implementation is dependency-free and tuned for
this repo's serving stack:

* **lock striping** — children take their locks from a small fixed pool
  striped by child identity, so eight scheduler workers bumping eight
  different counters almost never contend, and a concurrent ``/metrics``
  scrape (which visits every child) holds each stripe only briefly;
* **passive collection** — a :class:`Gauge` may carry a *callback*
  evaluated at collection time (queue depth, breaker state, cache sizes),
  so steady-state instrumentation costs nothing between scrapes;
* **bucketed quantiles** — :class:`Histogram` keeps fixed cumulative
  buckets (the Prometheus ``le`` convention); :meth:`Histogram.quantile`
  answers p50/p95/p99 from the bucket counts, and the module-level
  :func:`quantile` helper is the *exact* sorted-list definition the bench
  suite reports, so runtime and benchmark percentiles share one home.

Registries render to the Prometheus text exposition format via
:func:`render_prometheus`, and :func:`parse_exposition` reads that format
back (the scrape-side helper the examples and tests use).

>>> registry = MetricsRegistry()
>>> requests = registry.counter(
...     "repro_requests_total", "Requests by family.", labels=("family",)
... )
>>> requests.labels(family="pqe").inc()
>>> requests.labels(family="pqe").inc(2)
>>> requests.labels(family="pqe").value
3
>>> print(render_prometheus([registry]).splitlines()[-1])
repro_requests_total{family="pqe"} 3
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Iterable, Sequence

from repro.exceptions import ReproError

#: Default latency buckets (seconds): the Prometheus convention, spanning
#: sub-millisecond memo hits up to multi-second sharded sweeps.  The
#: implicit ``+Inf`` bucket is always appended.
DEFAULT_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Size of the shared lock pool children stripe over.  16 stripes keep the
#: probability of two hot children colliding low while a full scrape still
#: only acquires 16 locks total.
LOCK_STRIPES = 16

_stripe_counter = [0]
_stripe_lock = threading.Lock()


def _next_stripe_index() -> int:
    with _stripe_lock:
        _stripe_counter[0] += 1
        return _stripe_counter[0] % LOCK_STRIPES


def quantile(values: Iterable[float], fraction: float) -> float:
    """The exact nearest-rank percentile the bench suite reports.

    Sorts a copy of *values* and indexes at ``round(fraction · (n-1))`` —
    the historical ``bench/perf.py`` definition, now shared by the serve
    bench scenario and anything else reporting exact percentiles, so every
    p50/p95 in the repo means the same thing.  An empty input yields 0.0.

    >>> quantile([3.0, 1.0, 2.0], 0.5)
    2.0
    >>> quantile([], 0.95)
    0.0
    """
    ordered = sorted(values)
    if not ordered:
        return 0.0
    index = min(len(ordered) - 1, round(fraction * (len(ordered) - 1)))
    return ordered[index]


def _validate_name(name: str) -> str:
    if not name or not all(
        ch.isalnum() or ch in "_:" for ch in name
    ) or name[0].isdigit():
        raise ReproError(f"invalid metric name {name!r}")
    return name


def _escape_label_value(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _format_value(value) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return str(value)


def _labels_suffix(label_names: Sequence[str], label_values: Sequence[str]) -> str:
    if not label_names:
        return ""
    inner = ",".join(
        f'{name}="{_escape_label_value(str(value))}"'
        for name, value in zip(label_names, label_values)
    )
    return "{" + inner + "}"


class Counter:
    """One monotonically increasing child (one label-value assignment).

    >>> child = MetricsRegistry().counter("repro_demo_total", "demo").labels()
    >>> child.inc(); child.inc(4); child.value
    5
    """

    __slots__ = ("_value", "_lock")

    def __init__(self, lock: threading.Lock):
        self._value = 0
        self._lock = lock

    def inc(self, amount: int | float = 1) -> None:
        """Add *amount* (must be non-negative: counters only go up)."""
        if amount < 0:
            raise ReproError(
                f"counters are monotone; cannot add {amount!r}"
            )
        with self._lock:
            self._value += amount

    @property
    def value(self):
        """The current count."""
        with self._lock:
            return self._value


class Gauge:
    """One settable child, optionally backed by a scrape-time callback.

    >>> gauge = MetricsRegistry().gauge("repro_demo", "demo").labels()
    >>> gauge.set(3); gauge.value
    3
    >>> gauge.set_function(lambda: 7); gauge.value
    7
    """

    __slots__ = ("_value", "_lock", "_callback")

    def __init__(self, lock: threading.Lock):
        self._value = 0
        self._lock = lock
        self._callback: Callable[[], float] | None = None

    def set(self, value) -> None:
        """Set the gauge to *value*."""
        with self._lock:
            self._value = value

    def inc(self, amount: int | float = 1) -> None:
        """Add *amount* (gauges may go both ways)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: int | float = 1) -> None:
        """Subtract *amount*."""
        with self._lock:
            self._value -= amount

    def set_function(self, callback: Callable[[], float]) -> None:
        """Evaluate *callback* at every collection instead of a stored value.

        The passive-instrumentation hook: queue depth, breaker state and
        cache sizes are read from their owners only when a scrape asks.
        """
        self._callback = callback

    @property
    def value(self):
        """The current value (the callback's answer when one is set)."""
        callback = self._callback
        if callback is not None:
            return callback()
        with self._lock:
            return self._value


class Histogram:
    """One fixed-bucket histogram child with derivable quantiles.

    Observations land in cumulative buckets (Prometheus ``le`` semantics:
    ``counts[i]`` counts observations ≤ ``upper_bounds[i]``, stored here
    non-cumulatively and accumulated at read time).  ``quantile`` answers
    percentile estimates at bucket resolution — exact whenever every
    observation in the target bucket shares a value, and never off by more
    than one bucket width.

    >>> hist = MetricsRegistry().histogram(
    ...     "repro_demo_seconds", "demo", buckets=(0.1, 1.0)
    ... ).labels()
    >>> for value in (0.05, 0.05, 0.5, 2.0): hist.observe(value)
    >>> hist.count, round(hist.sum, 2)
    (4, 2.6)
    >>> hist.quantile(0.5) <= 0.1
    True
    """

    __slots__ = ("upper_bounds", "_counts", "_sum", "_count", "_lock")

    def __init__(self, lock: threading.Lock, buckets: Sequence[float]):
        bounds = tuple(sorted(buckets))
        if not bounds:
            raise ReproError("a histogram needs at least one finite bucket")
        if any(b != b or b == float("inf") for b in bounds):
            raise ReproError("histogram buckets must be finite numbers")
        self.upper_bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        """Record one observation."""
        index = bisect.bisect_left(self.upper_bounds, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        """Total observations."""
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        """Sum of all observed values."""
        with self._lock:
            return self._sum

    def cumulative_counts(self) -> list[int]:
        """Per-bucket cumulative counts (``le`` semantics, +Inf last)."""
        with self._lock:
            counts = list(self._counts)
        total = 0
        cumulative = []
        for count in counts:
            total += count
            cumulative.append(total)
        return cumulative

    def quantile(self, fraction: float) -> float:
        """The *fraction*-quantile estimated from the bucket counts.

        Returns the upper bound of the first bucket whose cumulative count
        reaches ``fraction · count``, linearly interpolated within the
        bucket; the +Inf bucket answers with the largest finite bound.
        Zero observations yield 0.0.
        """
        cumulative = self.cumulative_counts()
        total = cumulative[-1]
        if total == 0:
            return 0.0
        rank = fraction * total
        previous = 0
        lower = 0.0
        for index, reached in enumerate(cumulative):
            if reached >= rank:
                if index >= len(self.upper_bounds):
                    return self.upper_bounds[-1]
                upper = self.upper_bounds[index]
                in_bucket = reached - previous
                if in_bucket <= 0:
                    return upper
                return lower + (upper - lower) * (rank - previous) / in_bucket
            previous = reached
            lower = self.upper_bounds[min(index, len(self.upper_bounds) - 1)]
        return self.upper_bounds[-1]


class MetricFamily:
    """One named metric: a type, label names, and its per-label children.

    Children are created lazily by :meth:`labels` and cached, so the hot
    path — ``family.labels(family="pqe").inc()`` — is one dict lookup.
    """

    def __init__(
        self,
        name: str,
        help_text: str,
        metric_type: str,
        label_names: Sequence[str],
        stripes: Sequence[threading.Lock],
        buckets: Sequence[float] | None = None,
    ):
        self.name = _validate_name(name)
        self.help = help_text
        self.type = metric_type
        self.label_names = tuple(label_names)
        self._stripes = stripes
        if metric_type == "histogram":
            bounds = tuple(sorted(buckets or ()))
            if not bounds:
                raise ReproError(
                    "a histogram needs at least one finite bucket"
                )
            if any(b != b or b == float("inf") for b in bounds):
                raise ReproError("histogram buckets must be finite numbers")
            buckets = bounds
        self._buckets = buckets
        self._children: dict[tuple, object] = {}
        self._lock = threading.Lock()

    def labels(self, **label_values) -> object:
        """The child for this label-value assignment (created on first use)."""
        if set(label_values) != set(self.label_names):
            raise ReproError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(label_values))}"
            )
        key = tuple(str(label_values[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    stripe = self._stripes[_next_stripe_index()]
                    if self.type == "counter":
                        child = Counter(stripe)
                    elif self.type == "gauge":
                        child = Gauge(stripe)
                    else:
                        child = Histogram(stripe, self._buckets)
                    self._children[key] = child
        return child

    def children(self) -> list[tuple[tuple, object]]:
        """A point-in-time ``(label values, child)`` listing."""
        with self._lock:
            return list(self._children.items())

    def __repr__(self) -> str:
        return (
            f"MetricFamily({self.name!r}, type={self.type!r}, "
            f"labels={self.label_names})"
        )


class MetricsRegistry:
    """A named collection of metric families, renderable for Prometheus.

    One registry per instrumented component (a scheduler, a session's
    shared state, the process-wide core-engine registry) — the HTTP
    front-end renders several registries into one exposition.  Family
    constructors are idempotent: asking for an existing name returns the
    existing family (and raises on a type/label mismatch), so modules can
    declare their metrics unconditionally.
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._families: dict[str, MetricFamily] = {}
        self._stripes = tuple(
            threading.Lock() for _ in range(LOCK_STRIPES)
        )

    def _family(
        self,
        name: str,
        help_text: str,
        metric_type: str,
        labels: Sequence[str],
        buckets: Sequence[float] | None = None,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.type != metric_type or family.label_names != tuple(
                    labels
                ):
                    raise ReproError(
                        f"metric {name!r} already registered as "
                        f"{family.type} with labels {family.label_names}"
                    )
                return family
            family = MetricFamily(
                name, help_text, metric_type, labels, self._stripes, buckets
            )
            self._families[name] = family
            return family

    def counter(
        self, name: str, help_text: str, labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a counter family."""
        return self._family(name, help_text, "counter", labels)

    def gauge(
        self, name: str, help_text: str, labels: Sequence[str] = ()
    ) -> MetricFamily:
        """Register (or fetch) a gauge family."""
        return self._family(name, help_text, "gauge", labels)

    def histogram(
        self,
        name: str,
        help_text: str,
        labels: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> MetricFamily:
        """Register (or fetch) a histogram family with fixed *buckets*."""
        return self._family(name, help_text, "histogram", labels, buckets)

    def collect(self) -> list[MetricFamily]:
        """A point-in-time listing of every registered family."""
        with self._lock:
            return list(self._families.values())

    def snapshot(self) -> dict:
        """Every child's current value as one plain nested mapping.

        ``{name: value}`` for unlabeled single-child families and
        ``{name: {label values tuple: value}}`` for labeled ones;
        histograms report ``(count, sum)``.  This is the single source the
        scheduler's ``stats()`` and the CLI printer both read, so their
        numbers can never disagree.
        """
        snapshot: dict = {}
        for family in self.collect():
            entries = {}
            for key, child in family.children():
                if isinstance(child, Histogram):
                    entries[key] = (child.count, child.sum)
                else:
                    entries[key] = child.value
            if not family.label_names:
                snapshot[family.name] = entries.get((), 0)
            else:
                snapshot[family.name] = entries
        return snapshot


def render_prometheus(registries: Iterable[MetricsRegistry]) -> str:
    """Render *registries* into the Prometheus text exposition format.

    Families appearing in several registries are merged under one
    ``HELP``/``TYPE`` header; children with identical label sets are
    summed, so two sessions sharing a metric name scrape coherently.
    """
    merged: dict[str, tuple[MetricFamily, dict]] = {}
    for registry in registries:
        for family in registry.collect():
            entry = merged.get(family.name)
            if entry is None:
                merged[family.name] = (family, dict(family.children()))
                continue
            _first, children = entry
            for key, child in family.children():
                present = children.get(key)
                if present is None:
                    children[key] = child
                else:
                    children[key] = _MergedChild(present, child)
    lines: list[str] = []
    for name in sorted(merged):
        family, children = merged[name]
        lines.append(f"# HELP {name} {family.help}")
        lines.append(f"# TYPE {name} {family.type}")
        for key in sorted(children):
            child = children[key]
            if family.type == "histogram":
                _render_histogram(lines, family, key, child)
            else:
                suffix = _labels_suffix(family.label_names, key)
                lines.append(
                    f"{name}{suffix} {_format_value(child.value)}"
                )
    return "\n".join(lines) + "\n"


class _MergedChild:
    """Sums two same-label children from different registries at render."""

    def __init__(self, left, right):
        self._left = left
        self._right = right

    @property
    def value(self):
        return self._left.value + self._right.value

    @property
    def count(self):
        return self._left.count + self._right.count

    @property
    def sum(self):
        return self._left.sum + self._right.sum

    @property
    def upper_bounds(self):
        return self._left.upper_bounds

    def cumulative_counts(self):
        left = self._left.cumulative_counts()
        right = self._right.cumulative_counts()
        return [a + b for a, b in zip(left, right)]


def _render_histogram(lines, family, key, child) -> None:
    cumulative = child.cumulative_counts()
    bounds = [*child.upper_bounds, float("inf")]
    for bound, reached in zip(bounds, cumulative):
        suffix = _labels_suffix(
            (*family.label_names, "le"), (*key, _format_value(bound))
        )
        lines.append(f"{family.name}_bucket{suffix} {reached}")
    suffix = _labels_suffix(family.label_names, key)
    lines.append(f"{family.name}_sum{suffix} {_format_value(child.sum)}")
    lines.append(f"{family.name}_count{suffix} {child.count}")


def parse_exposition(text: str) -> dict[tuple[str, tuple], float]:
    """Parse Prometheus text exposition back into ``{(name, labels): value}``.

    The scrape-side inverse of :func:`render_prometheus` for the tests and
    examples: labels are ``(name, value)`` pairs sorted by name.  Comment
    and blank lines are skipped; malformed sample lines raise.

    >>> parsed = parse_exposition('demo_total{family="pqe"} 3\\n')
    >>> parsed[("demo_total", (("family", "pqe"),))]
    3.0
    """
    parsed: dict[tuple[str, tuple], float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        if "{" in line:
            name, rest = line.split("{", 1)
            label_text, value_text = rest.rsplit("}", 1)
            labels = []
            for part in _split_labels(label_text):
                key, raw = part.split("=", 1)
                labels.append((key, raw.strip('"')))
            labels.sort()
        else:
            name, value_text = line.rsplit(None, 1)
            labels = []
        parsed[(name.strip(), tuple(labels))] = float(value_text)
    return parsed


def _split_labels(label_text: str) -> list[str]:
    """Split ``a="x",b="y"`` on commas outside quotes."""
    parts: list[str] = []
    current: list[str] = []
    quoted = False
    for ch in label_text:
        if ch == '"':
            quoted = not quoted
        if ch == "," and not quoted:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return [part for part in parts if part]
