"""Per-request lifecycle traces and the structured JSONL event log.

A :class:`Trace` rides along with one serving request from admission to
resolution.  Each stage calls :meth:`Trace.mark` with a stage name —
``submitted``, ``claimed``, ``executed`` / ``memo_hit`` / ``swept`` /
``fused``, ``resolved`` — and the trace records a monotonic timestamp
plus any structured fields the stage attaches (outcome, batch size,
tier).  Durations are derived, never stored: ``queue_wait`` is
claimed − submitted, ``total`` is resolved − submitted, so a trace is
just an append-only list of marks and stays cheap to take under the
scheduler's locks.

Traces are reachable from both ends of the futures API: the scheduler
attaches each trace to the future it hands back (read it with
:func:`trace_of`) and to the :class:`~repro.serve.request.Request`
itself via its ``trace`` field.

When the scheduler is given an :class:`EventLog`, every resolved trace
is appended to it as one JSON object per line — a greppable flight
recorder for post-hoc analysis.

>>> trace = Trace("pqe")
>>> trace.mark("submitted")
>>> trace.mark("resolved", outcome="ok")
>>> [name for name, _ts, _fields in trace.marks]
['submitted', 'resolved']
>>> trace.to_dict()["family"]
'pqe'
"""

from __future__ import annotations

import json
import threading
import time


class Trace:
    """The recorded lifecycle of one serving request.

    Marks are ``(stage, timestamp, fields)`` triples ordered by arrival;
    ``timestamp`` is a ``time.perf_counter()`` reading, so durations
    between marks are meaningful but absolute values are not.
    """

    __slots__ = ("family", "marks", "_lock")

    def __init__(self, family: str):
        self.family = family
        self.marks: list[tuple[str, float, dict]] = []
        self._lock = threading.Lock()

    def mark(self, stage: str, **fields) -> None:
        """Record that *stage* happened now, with optional structured fields."""
        entry = (stage, time.perf_counter(), fields)
        with self._lock:
            self.marks.append(entry)

    def when(self, stage: str) -> float | None:
        """The timestamp of the first mark named *stage*, or None."""
        with self._lock:
            for name, timestamp, _fields in self.marks:
                if name == stage:
                    return timestamp
        return None

    def duration(self, start_stage: str, end_stage: str) -> float | None:
        """Seconds between the first *start_stage* and first *end_stage* marks."""
        start = self.when(start_stage)
        end = self.when(end_stage)
        if start is None or end is None:
            return None
        return end - start

    @property
    def queue_wait(self) -> float | None:
        """Seconds spent queued: submitted → claimed (None until both)."""
        return self.duration("submitted", "claimed")

    @property
    def total(self) -> float | None:
        """End-to-end seconds: submitted → resolved (None until resolved)."""
        return self.duration("submitted", "resolved")

    @property
    def outcome(self) -> str | None:
        """The ``outcome`` field of the ``resolved`` mark, if resolved."""
        with self._lock:
            for name, _timestamp, fields in self.marks:
                if name == "resolved":
                    return fields.get("outcome")
        return None

    def to_dict(self) -> dict:
        """A JSON-ready summary: family, relative-time marks, durations."""
        with self._lock:
            marks = list(self.marks)
        if marks:
            origin = marks[0][1]
        else:
            origin = 0.0
        return {
            "family": self.family,
            "marks": [
                {"stage": name, "t": round(timestamp - origin, 9), **fields}
                for name, timestamp, fields in marks
            ],
            "queue_wait_s": self.queue_wait,
            "total_s": self.total,
            "outcome": self.outcome,
        }

    def __repr__(self) -> str:
        stages = [name for name, _t, _f in self.marks]
        return f"Trace({self.family!r}, stages={stages})"


class EventLog:
    """A thread-safe JSONL appender for resolved request traces.

    One :meth:`record` call writes one line; the file handle is opened
    lazily and shared, so enabling the flight recorder costs one small
    serialized write per resolved request and nothing otherwise.
    """

    def __init__(self, path):
        self.path = path
        self._lock = threading.Lock()
        self._handle = None

    def record(self, trace: Trace) -> None:
        """Append *trace* (via :meth:`Trace.to_dict`) as one JSON line."""
        line = json.dumps(trace.to_dict(), sort_keys=True)
        with self._lock:
            if self._handle is None:
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        """Flush and close the underlying file (idempotent)."""
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


def trace_of(obj) -> Trace | None:
    """The :class:`Trace` attached to a future or request, if any.

    The scheduler stores each request's trace on the future it returns
    (``_repro_trace``) and on the request's ``trace`` field; this helper
    reads either, so callers holding only a future can still ask where
    its time went.

    >>> class Stub: pass
    >>> future = Stub()
    >>> future._repro_trace = Trace("pqe")
    >>> trace_of(future).family
    'pqe'
    >>> trace_of(object()) is None
    True
    """
    trace = getattr(obj, "_repro_trace", None)
    if trace is not None:
        return trace
    trace = getattr(obj, "trace", None)
    if isinstance(trace, Trace):
        return trace
    return None
