"""Dependency-free observability: metrics, traces, Prometheus exposition.

The package has two halves:

* :mod:`repro.obs.metrics` — thread-safe, lock-striped
  :class:`MetricsRegistry` holding :class:`Counter` / :class:`Gauge` /
  :class:`Histogram` families, rendered to Prometheus text exposition by
  :func:`render_prometheus`; plus the shared nearest-rank
  :func:`quantile` the bench suite reports.
* :mod:`repro.obs.trace` — per-request :class:`Trace` lifecycle spans
  (admission → queue wait → claim → execute/memo/sweep/fuse → resolve),
  reachable from futures via :func:`trace_of`, with an optional
  :class:`EventLog` JSONL flight recorder.

Component-local registries (a scheduler's, a session's) keep per-instance
``stats()`` views working; the process-wide :func:`global_registry` is
where the core execution layers (tier selection, sharded dispatch, fusion)
report, since plan execution is not tied to any one session.
"""

from __future__ import annotations

import threading

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsRegistry,
    parse_exposition,
    quantile,
    render_prometheus,
)
from repro.obs.trace import EventLog, Trace, trace_of

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "Trace",
    "global_registry",
    "parse_exposition",
    "quantile",
    "render_prometheus",
    "trace_of",
]

_GLOBAL_LOCK = threading.Lock()
_GLOBAL_REGISTRY: MetricsRegistry | None = None


def global_registry() -> MetricsRegistry:
    """The process-wide registry the core execution layers report into.

    Tier selections, fallbacks, per-plan timings, sharded dispatch events
    and fused-batch counters are process-global facts (plan execution is
    shared machinery, not per-session state), so they live here; serving
    components keep their own registries and the HTTP front-end composes
    all of them into one ``/metrics`` page.
    """
    global _GLOBAL_REGISTRY
    with _GLOBAL_LOCK:
        if _GLOBAL_REGISTRY is None:
            _GLOBAL_REGISTRY = MetricsRegistry()
        return _GLOBAL_REGISTRY
