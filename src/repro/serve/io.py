"""JSON request streams for ``repro serve --requests FILE``.

One self-contained document describes a serving target and its request
stream::

    {
      "query": "Q() :- R(X), S(X, Y)",
      "data": {
        "probabilistic": {"facts": [{"relation": "R", "values": [1],
                                     "probability": 0.5}, ...]},
        "endogenous": {"relations": {"S": [[1, 2]]}}
      },
      "requests": [
        {"family": "pqe"},
        {"family": "pqe", "exact": true},
        {"family": "shapley_value", "fact": {"relation": "S",
                                             "values": [1, 2]}}
      ]
    }

``data`` entries reuse the :mod:`repro.db.io` payload formats
(``probabilistic`` the TID fact list, everything else the per-relation
tuple lists).  Request parameters named ``fact`` decode to
:class:`~repro.db.fact.Fact`; ``values`` inside facts follow JSON
scalar round-tripping.

>>> from repro.serve.io import request_from_dict
>>> str(request_from_dict({"family": "pqe", "exact": True}))
'pqe(exact=True)'
>>> request_from_dict({
...     "family": "shapley_value",
...     "fact": {"relation": "S", "values": [1, 2]},
... }).kwargs
{'fact': Fact(relation='S', values=(1, 2))}
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.db.fact import Fact
from repro.db.io import database_from_dict, probabilistic_from_dict
from repro.exceptions import SchemaError
from repro.query.bcq import BCQ
from repro.query.parser import parse_query
from repro.serve.request import Request

#: ``data`` keys accepted in a stream document → payload decoder.
_DATA_LOADERS = {
    "database": database_from_dict,
    "repair": database_from_dict,
    "exogenous": database_from_dict,
    "endogenous": database_from_dict,
    "probabilistic": probabilistic_from_dict,
}


def _decode_param(name: str, value: Any) -> Any:
    if name == "fact":
        if (
            not isinstance(value, dict)
            or "relation" not in value
            or "values" not in value
        ):
            raise SchemaError(
                f"a 'fact' parameter needs 'relation' and 'values', got "
                f"{value!r}"
            )
        return Fact(value["relation"], tuple(value["values"]))
    return value


def request_from_dict(payload: dict) -> Request:
    """Decode one request entry (``family`` plus keyword parameters).

    A ``deadline_ms`` key (milliseconds, non-negative number) becomes the
    request's relative :attr:`~repro.serve.request.Request.deadline` —
    admission metadata, not a handler parameter:

    >>> request_from_dict({"family": "pqe", "deadline_ms": 250}).deadline
    0.25
    """
    if not isinstance(payload, dict) or "family" not in payload:
        raise SchemaError(f"request entry needs a 'family' key: {payload!r}")
    deadline = None
    if "deadline_ms" in payload:
        raw = payload["deadline_ms"]
        if isinstance(raw, bool) or not isinstance(raw, (int, float)) or raw < 0:
            raise SchemaError(
                f"'deadline_ms' must be a non-negative number, got {raw!r}"
            )
        deadline = raw / 1000.0
    params = {
        name: _decode_param(name, value)
        for name, value in payload.items()
        if name not in ("family", "deadline_ms")
    }
    return Request.make(
        payload["family"], deadline=deadline, **params
    ).validate()


def requests_from_dict(payload: dict) -> list[Request]:
    """Decode one stream entry, expanding a ``bindings`` parameter sweep.

    A ``bindings`` key — a list of binding objects, each a variable→value
    mapping or a list of ``[variable, value]`` pairs — expands the entry
    into one request per binding, all sharing the entry's other
    parameters.  This is the JSON spelling of a shared-scan sweep: the
    expanded requests carry identical signatures up to their ``binding``,
    so the scheduler claims them into one fused batch
    (:mod:`repro.core.fused`).

    >>> [str(r) for r in requests_from_dict(
    ...     {"family": "pqe", "bindings": [{"X": 1}, {"X": 2}]}
    ... )]
    ["pqe(binding=(('X', 1),))", "pqe(binding=(('X', 2),))"]
    """
    if not isinstance(payload, dict) or "family" not in payload:
        raise SchemaError(f"request entry needs a 'family' key: {payload!r}")
    if "bindings" not in payload:
        return [request_from_dict(payload)]
    bindings = payload["bindings"]
    if not isinstance(bindings, list) or not bindings:
        raise SchemaError(
            f"'bindings' must be a non-empty list of binding objects, got "
            f"{bindings!r}"
        )
    if "binding" in payload:
        raise SchemaError(
            "a request entry takes 'binding' or 'bindings', not both"
        )
    template = {
        name: value for name, value in payload.items() if name != "bindings"
    }
    return [
        request_from_dict({**template, "binding": binding})
        for binding in bindings
    ]


def load_request_stream(path: str | Path) -> tuple[BCQ, dict, list[Request]]:
    """Parse a stream document into ``(query, data sources, requests)``.

    The returned ``data`` mapping plugs straight into
    :class:`~repro.serve.server.Server` (or ``Engine.open``) as keyword
    arguments.
    """
    with open(path, encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "query" not in payload:
        raise SchemaError("request stream needs a top-level 'query' string")
    query = parse_query(payload["query"])
    data_payload = payload.get("data", {})
    if not isinstance(data_payload, dict):
        raise SchemaError("'data' must map source names to database payloads")
    data = {}
    for name, entry in data_payload.items():
        loader = _DATA_LOADERS.get(name)
        if loader is None:
            raise SchemaError(
                f"unknown data source {name!r}; expected one of "
                f"{sorted(_DATA_LOADERS)}"
            )
        data[name] = loader(entry)
    entries = payload.get("requests", [])
    if not isinstance(entries, list):
        raise SchemaError("'requests' must be a list of request entries")
    return query, data, [
        request
        for entry in entries
        for request in requests_from_dict(entry)
    ]
