"""Request scheduler: queueing, single-flight, batching, fault tolerance.

The scheduler turns a stream of :class:`~repro.serve.request.Request`
objects into session work on a pool of worker threads, with two
serving-layer optimizations the one-shot front-ends cannot express:

* **single-flight coalescing** — concurrent requests with the same
  signature against the same session attach to one in-flight execution and
  all receive its result; the duplicate work is never enqueued (and once a
  flight completes, later duplicates are answered by the session memo);
* **sweep batching** — per-fact Shapley/Banzhaf requests pending against
  one session are claimed together by one worker; when the batch covers
  enough of the endogenous facts, the worker runs **one**
  ``shapley_values()``/``banzhaf_values()`` sweep (memoized on the session)
  and answers every claimed request from it, instead of paying the
  2-run reduction once per request.  Smaller batches still drain on one
  worker — per-fact requests serialize on the session's Shapley lock
  anyway, so claiming them frees the other workers for other families.

On top of that sits the robustness layer (all features default-off, so an
unconfigured scheduler behaves — and costs — exactly like the
pre-robustness one):

* **admission control** (:class:`~repro.serve.admission.AdmissionControl`)
  — a bounded pending queue (reject with
  :class:`~repro.exceptions.QueueFullError` or shed the oldest queued
  request), per-family token-bucket rate limiting, and per-request
  deadlines checked **at claim time**: an expired request resolves with
  :class:`~repro.exceptions.DeadlineExceeded` before any execution, so
  queued-but-dead work costs nothing;
* **retries** (:class:`~repro.serve.admission.RetryPolicy`) — transient
  execution failures retry with exponential backoff + jitter under a
  per-request budget;
* **worker supervision** — a worker that dies on an escaped exception
  (a bug, or an injected :class:`~repro.serve.faults.WorkerKilled`) is
  detected and respawned; its claimed flights are re-queued (up to
  ``requeue_limit`` deaths per flight) or failed with
  :class:`~repro.exceptions.TransientError` — never stranded;
* **circuit breaking** (:class:`~repro.serve.admission.CircuitBreaker`) —
  repeated kernel failures degrade a session's tier to the batched
  kernels (bit-identical results) and, if failures persist, fail requests
  fast with :class:`~repro.exceptions.CircuitOpenError` until a cool-down;
* **fault injection** (:class:`~repro.serve.faults.FaultInjector`) — the
  seeded chaos harness behind the ``tests/test_faults.py`` suite; when
  installed it also supplies the scheduler's clock (skewable).

Execution itself goes through
:meth:`~repro.engine.session.EngineSession.request`, so every answer is
memoized under its signature + database-version fingerprint and stays
bit-identical to a serial one-shot evaluation (same code path, same fold
order).
"""

from __future__ import annotations

import queue
import random
import threading
import time
from concurrent.futures import Future, InvalidStateError

from repro.core import sharded
from repro.core.sharded import validate_worker_count
from repro.engine.session import EngineSession
from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceeded,
    QueueFullError,
    ReproError,
    TransientError,
)
from repro.serve.admission import AdmissionControl, CircuitBreaker, RetryPolicy
from repro.serve.faults import FaultInjector
from repro.serve.request import Request

#: Per-fact families answerable from one whole-instance sweep.
_SWEEPS = {
    "shapley_value": "shapley_values",
    "banzhaf_value": "banzhaf_values",
}

#: Families whose binding-carrying requests batch into one shared columnar
#: scan (:meth:`EngineSession.evaluate_many` → :mod:`repro.core.fused`).
_FUSED_FAMILIES = ("pqe", "expected_count")


def _fusable(request: Request) -> bool:
    """Whether *request* can join a shared-scan fused batch."""
    return (
        request.family in _FUSED_FAMILIES
        and "binding" in request.kwargs
    )

_SHUTDOWN = object()


class _Flight:
    """One in-flight signature: the execution every duplicate attaches to.

    ``entries`` pairs each attached future with its absolute expiry (or
    ``None``); ``requeues`` counts worker deaths survived, bounding how
    often supervision may re-queue the flight before failing it.
    """

    __slots__ = ("session", "request", "entries", "claimed", "requeues")

    def __init__(self, session: EngineSession, request: Request):
        self.session = session
        self.request = request
        self.entries: list[tuple[Future, float | None]] = []
        self.claimed = False
        self.requeues = 0


class Scheduler:
    """Runs session requests on worker threads with coalescing and batching.

    Parameters
    ----------
    workers:
        Worker-thread count (validated by
        :func:`repro.core.sharded.validate_worker_count`, the single
        helper shared with the CLI and ``--shard-workers``).  Results are
        independent of the count — the concurrency stress tests assert
        bit-identical answers against serial evaluation for every tier.
    shard_workers:
        When set, configures the process pool of the sharded tier
        (:mod:`repro.core.sharded`).  Worker threads running sessions of a
        ``kernel_mode="sharded"`` engine dispatch their plan executions to
        that shared pool, so N serve workers stop competing for one GIL —
        the threads shape latency, the processes carry the fold work.
    admission:
        Admission policy (queue bound, rate limits, default deadline).
        Defaults to a no-limits :class:`AdmissionControl`.
    retry:
        Retry policy for transient failures.  Defaults to no retries.
    breaker:
        Optional per-session :class:`CircuitBreaker`.
    faults:
        Optional seeded :class:`FaultInjector`; when given it also
        supplies the scheduler's clock (so deadlines and breaker
        cool-downs honor injected skew).
    requeue_limit:
        How many worker deaths one flight survives (re-queued each time)
        before its futures fail with :class:`TransientError`.
    """

    def __init__(
        self,
        workers: int = 4,
        *,
        admission: AdmissionControl | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        faults: FaultInjector | None = None,
        requeue_limit: int = 5,
        shard_workers: int | None = None,
    ):
        validate_worker_count(workers, what="worker")
        self.workers = workers
        self.shard_workers = shard_workers
        if shard_workers is not None:
            sharded.set_shard_workers(shard_workers)
        if faults is not None:
            # Chaos wiring: the injector decides, per sharded dispatch,
            # whether to SIGKILL one pool process (see FaultPlan).
            sharded.set_shard_fault_hook(faults.on_shard_dispatch)
        self.requeue_limit = requeue_limit
        self._admission = admission if admission is not None else AdmissionControl()
        self._retry = retry if retry is not None else RetryPolicy()
        self._breaker = breaker
        self._faults = faults
        self._clock = faults.clock if faults is not None else time.monotonic
        self._retry_rng = (
            faults.retry_rng() if faults is not None else random.Random(0x5EED)
        )
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._pending: dict[tuple, _Flight] = {}
        self._queued = 0  # unclaimed flights (the bounded-queue depth)
        self._closed = False
        self._submitted = 0
        self._coalesced = 0
        self._executed = 0
        self._sweeps = 0
        self._swept_requests = 0
        self._sweep_failures = 0
        self._fused_batches = 0
        self._fused_queries = 0
        self._fused_failures = 0
        self._timeouts = 0
        self._retries = 0
        self._worker_deaths = 0
        self._respawns = 0
        self._requeued = 0
        self._unresolved_at_close = 0
        self._threads = [
            threading.Thread(
                target=self._work, name=f"repro-serve-{index}", daemon=True
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def submit(self, session: EngineSession, request: Request) -> Future:
        """Enqueue *request* against *session*; returns a future.

        A request whose signature is already in flight on the same session
        coalesces onto the existing execution instead of enqueueing.
        Admission control runs first: an open circuit raises
        :class:`CircuitOpenError`, a dry token bucket
        :class:`~repro.exceptions.RateLimitedError`, and a full queue
        :class:`QueueFullError` (or sheds the oldest queued request,
        depending on the policy).
        """
        request.validate()
        key = (id(session), request.signature)
        future: Future = Future()
        now = self._clock()
        shed: list[tuple[Future, BaseException]] = []
        try:
            with self._lock:
                if self._closed:
                    raise ReproError("scheduler is closed")
                if self._breaker is not None and self._breaker.reject(
                    session, now
                ):
                    raise CircuitOpenError(
                        "circuit open for this session; retry after cool-down"
                    )
                self._admission.admit(request.family, now)
                expiry = self._admission.expiry_for(request, now)
                self._submitted += 1
                flight = self._pending.get(key)
                if flight is not None:
                    flight.entries.append((future, expiry))
                    self._coalesced += 1
                    return future
                limit = self._admission.queue_limit
                if limit is not None and self._queued >= limit:
                    if self._admission.shed_policy == "reject":
                        self._admission.count_rejected()
                        self._submitted -= 1
                        raise QueueFullError(
                            f"request queue is full "
                            f"({self._queued}/{limit} pending)"
                        )
                    shed = self._shed_oldest_locked(limit)
                flight = _Flight(session, request)
                flight.entries.append((future, expiry))
                self._pending[key] = flight
                self._queued += 1
                # Enqueue under the lock: close() also sets _closed under
                # it, so every accepted flight's key is in the queue before
                # the shutdown sentinels — no future can be left unserved.
                self._queue.put(key)
            return future
        finally:
            for victim, error in shed:
                self._resolve(victim, None, error)

    def _shed_oldest_locked(
        self, limit: int
    ) -> list[tuple[Future, BaseException]]:
        """Drop the oldest unclaimed flight(s) to make room (lock held)."""
        shed: list[tuple[Future, BaseException]] = []
        for key, flight in list(self._pending.items()):
            if self._queued < limit:
                break
            if flight.claimed:
                continue
            del self._pending[key]
            self._queued -= 1
            self._admission.count_shed()
            error = QueueFullError(
                f"shed from a full request queue (limit {limit})"
            )
            shed.extend((future, error) for future, _expiry in flight.entries)
        return shed

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _work(self) -> None:
        while True:
            key = self._queue.get()
            if key is _SHUTDOWN:
                return
            batch = self._claim(key)
            if not batch:
                continue
            try:
                if self._faults is not None:
                    self._faults.on_claim()
                self._execute(batch)
            except BaseException as error:
                # Supervision: recover the claimed flights, respawn a
                # replacement worker, and let this thread die.
                self._recover(batch, error)
                return

    def _claim_one_locked(
        self,
        key: tuple,
        flight: _Flight,
        now: float,
        to_resolve: list[tuple[Future, BaseException | None, object]],
    ) -> bool:
        """Claim *flight* for execution, enforcing deadlines and the breaker.

        Expired entries resolve with :class:`DeadlineExceeded` — checked
        here, at claim time, so queued-but-dead work never executes.
        Returns ``False`` when nothing is left to execute (the flight is
        then dropped from the pending table).
        """
        live = []
        for future, expiry in flight.entries:
            if expiry is not None and now >= expiry:
                self._timeouts += 1
                to_resolve.append(
                    (future, DeadlineExceeded(
                        f"deadline expired before execution: {flight.request}"
                    ), None)
                )
            else:
                live.append((future, expiry))
        flight.entries = live
        if not live:
            del self._pending[key]
            self._queued -= 1
            return False
        if self._breaker is not None and self._breaker.reject(
            flight.session, now
        ):
            error = CircuitOpenError(
                "circuit open for this session; retry after cool-down"
            )
            to_resolve.extend((future, error, None) for future, _ in live)
            del self._pending[key]
            self._queued -= 1
            return False
        flight.claimed = True
        self._queued -= 1
        return True

    def _claim(self, key: tuple) -> list[tuple[tuple, _Flight]]:
        """Claim the flight behind *key* plus any batchable siblings."""
        now = self._clock()
        to_resolve: list = []
        batch: list[tuple[tuple, _Flight]] = []
        with self._lock:
            flight = self._pending.get(key)
            if (
                flight is not None
                and not flight.claimed
                and self._claim_one_locked(key, flight, now, to_resolve)
            ):
                batch.append((key, flight))
                if flight.request.family in _SWEEPS or _fusable(
                    flight.request
                ):
                    lead_fusable = _fusable(flight.request)
                    for other_key, other in list(self._pending.items()):
                        if (
                            other is not flight
                            and not other.claimed
                            and other.session is flight.session
                            and other.request.family == flight.request.family
                            and (not lead_fusable or _fusable(other.request))
                            and self._claim_one_locked(
                                other_key, other, now, to_resolve
                            )
                        ):
                            batch.append((other_key, other))
        for future, error, value in to_resolve:
            self._resolve(future, value, error)
        return batch

    def _sweep_pays(self, session: EngineSession, batch_size: int) -> bool:
        """Whether one full sweep beats ``batch_size`` per-fact reductions.

        A sweep costs ``2·|Dn|`` runs, the individual requests ``2·k``; the
        sweep wins outright at ``k ≥ |Dn|/2`` — and additionally leaves the
        memoized sweep behind for every future per-fact request, which is
        why the threshold is not simply ``k ≥ |Dn|``.
        """
        try:
            endogenous = session.shapley_instance().endogenous_count
        except ReproError:
            return False
        return 2 * batch_size >= endogenous

    def _execute_flight(
        self, session: EngineSession, family: str, flight: _Flight
    ) -> tuple[_Flight, object, BaseException | None]:
        """One flight's execution: fault injection, retries, breaker votes."""
        attempts = self._retry.max_retries + 1
        for attempt in range(attempts):
            try:
                if self._faults is not None:
                    self._faults.before_attempt()
                value = session.request(family, **flight.request.kwargs)
            except BaseException as error:
                if self._breaker is not None:
                    self._breaker.record_failure(session, error, self._clock())
                if attempt + 1 < attempts and self._retry.retriable(error):
                    with self._lock:
                        self._retries += 1
                    delay = self._retry.delay_for(attempt, self._retry_rng)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                return (flight, None, error)
            else:
                if self._breaker is not None:
                    self._breaker.record_success(session, self._clock())
                return (flight, value, None)
        raise AssertionError("unreachable: the retry loop always returns")

    def _execute(self, batch: list[tuple[tuple, _Flight]]) -> None:
        first = batch[0][1]
        session = first.session
        family = first.request.family
        sweep_family = _SWEEPS.get(family)
        if (
            sweep_family is not None
            and len(batch) >= 2
            and self._sweep_pays(session, len(batch))
        ):
            try:
                if self._faults is not None:
                    self._faults.before_attempt()
                session.request(sweep_family)
                with self._lock:
                    self._sweeps += 1
                    self._swept_requests += len(batch)
            except Exception:
                # Counted, never swallowed silently: the batch falls
                # through to per-flight execution below, which surfaces
                # the error on the request(s) it actually belongs to (and
                # retries transient failures per flight).
                with self._lock:
                    self._sweep_failures += 1
        elif _fusable(first.request) and len(batch) >= 2:
            # Shared-scan fusion: answer the whole claimed batch in one
            # stacked columnar pass (bit-identical to per-flight serial by
            # construction — see repro.core.fused).  Like the sweep branch
            # this only *warms the session memo*; the per-flight loop below
            # then serves each request from it through the normal breaker,
            # retry and resolution bookkeeping.  On any failure the batch
            # falls through to per-flight execution, which re-raises the
            # error on the request(s) it belongs to.
            try:
                if self._faults is not None:
                    self._faults.before_attempt()
                session.evaluate_many(
                    [flight.request for _key, flight in batch]
                )
                with self._lock:
                    self._fused_batches += 1
                    self._fused_queries += len(batch)
            except Exception:
                with self._lock:
                    self._fused_failures += 1
        outcomes = []
        for _key, flight in batch:
            outcomes.append(self._execute_flight(session, family, flight))
        with self._lock:
            self._executed += len(batch)
            resolved = []
            for (key, flight), (_f, value, error) in zip(batch, outcomes):
                if self._pending.get(key) is flight:
                    del self._pending[key]
                # Snapshot under the lock: a duplicate submitted after this
                # point starts a fresh flight (served by the memo).
                resolved.append((list(flight.entries), value, error))
        for entries, value, error in resolved:
            for future, _expiry in entries:
                self._resolve(future, value, error)

    @staticmethod
    def _resolve(
        future: Future, value: object, error: BaseException | None
    ) -> None:
        """Resolve *future*, tolerating cancellation and double resolution.

        A future cancelled while queued must be skipped — calling
        ``set_result`` on it raises ``InvalidStateError`` and would kill
        the worker thread, stranding every other pending request.  A
        future already failed by ``close(timeout=…)`` while its execution
        straggled is likewise left alone.
        """
        try:
            if not future.set_running_or_notify_cancel():
                return
            if error is None:
                future.set_result(value)
            else:
                future.set_exception(error)
        except InvalidStateError:
            pass

    def _recover(self, batch: list[tuple[tuple, _Flight]], error: BaseException) -> None:
        """Worker supervision: re-queue or fail the dead worker's flights.

        Called from the dying worker thread itself.  Each claimed flight is
        re-queued (so a surviving worker serves it) unless it already
        survived ``requeue_limit`` deaths or the scheduler is closing — in
        both cases its futures fail with :class:`TransientError` instead of
        stranding.  A replacement worker is spawned unless closing.
        """
        to_fail: list[tuple[Future, float | None]] = []
        replacement = None
        with self._lock:
            self._worker_deaths += 1
            respawn = not self._closed
            for key, flight in batch:
                if self._pending.get(key) is not flight:
                    continue
                if respawn and flight.requeues < self.requeue_limit:
                    flight.requeues += 1
                    flight.claimed = False
                    self._queued += 1
                    self._requeued += 1
                    self._queue.put(key)
                else:
                    del self._pending[key]
                    to_fail.extend(flight.entries)
            if respawn:
                self._respawns += 1
                replacement = threading.Thread(
                    target=self._work,
                    name=f"repro-serve-respawn-{self._respawns}",
                    daemon=True,
                )
                current = threading.current_thread()
                if current in self._threads:
                    self._threads.remove(current)
                self._threads.append(replacement)
        if to_fail:
            wrapped = TransientError(
                f"worker thread died while serving this request: {error!r}"
            )
            for future, _expiry in to_fail:
                self._resolve(future, None, wrapped)
        if replacement is not None:
            replacement.start()

    # ------------------------------------------------------------------
    # Lifecycle / observability
    # ------------------------------------------------------------------
    def close(self, wait: bool = True, timeout: float | None = None) -> None:
        """Stop accepting requests, drain the queue, join the workers.

        Already-submitted requests are still executed (the shutdown
        sentinels queue behind them); ``wait=False`` skips the join.
        ``timeout`` bounds the total join time, so a wedged worker cannot
        hang ``close(wait=True)`` forever.  After the join, every accepted
        future is guaranteed resolved: any flight still pending (a worker
        crashed after the sentinels were queued, or the timeout fired
        first) fails with :class:`ReproError` rather than stranding its
        futures.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            threads = list(self._threads)
        if self._faults is not None:
            sharded.set_shard_fault_hook(None)
        for _ in threads:
            self._queue.put(_SHUTDOWN)
        if not wait:
            return
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        for thread in threads:
            remaining = (
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            thread.join(remaining)
        leftovers: list[tuple[Future, float | None]] = []
        with self._lock:
            for key, flight in list(self._pending.items()):
                leftovers.extend(flight.entries)
                del self._pending[key]
            self._queued = 0
            self._unresolved_at_close += len(leftovers)
        if leftovers:
            error = ReproError(
                "scheduler closed before this request resolved"
            )
            for future, _expiry in leftovers:
                self._resolve(future, None, error)

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def stats(self) -> dict:
        """Work + robustness counters (submissions, rejections, retries…).

        Flat keys cover the headline counters the CLI prints; the nested
        ``admission``/``breaker``/``faults`` entries carry each policy
        object's full view (``breaker``/``faults`` are ``None`` when not
        installed).  Batching effectiveness lives in the ``"batching"``
        sub-dict — Shapley/Banzhaf sweep counters next to shared-scan
        fusion counters — with the historical flat ``sweeps``/
        ``swept_requests``/``sweep_failures`` keys kept as aliases.
        """
        admission = self._admission.stats()
        breaker = self._breaker.stats() if self._breaker is not None else None
        with self._lock:
            batching = {
                "sweeps": self._sweeps,
                "swept_requests": self._swept_requests,
                "sweep_failures": self._sweep_failures,
                "fused_batches": self._fused_batches,
                "fused_queries": self._fused_queries,
                "fused_failures": self._fused_failures,
            }
            return {
                "workers": self.workers,
                "submitted": self._submitted,
                "coalesced": self._coalesced,
                "executed": self._executed,
                "batching": batching,
                "sweeps": self._sweeps,
                "swept_requests": self._swept_requests,
                "sweep_failures": self._sweep_failures,
                "fused_batches": self._fused_batches,
                "fused_queries": self._fused_queries,
                "pending": len(self._pending),
                "queued": self._queued,
                "rejected": admission["rejected"],
                "shed": admission["shed"],
                "rate_limited": admission["rate_limited"],
                "timeouts": self._timeouts,
                "retries": self._retries,
                "worker_deaths": self._worker_deaths,
                "worker_respawns": self._respawns,
                "requeued": self._requeued,
                "unresolved_at_close": self._unresolved_at_close,
                "breaker_trips": breaker["trips"] if breaker else 0,
                "breaker_open_rejections": (
                    breaker["open_rejections"] if breaker else 0
                ),
                "shard_workers": sharded.shard_workers(),
                "admission": admission,
                "breaker": breaker,
                "faults": (
                    self._faults.stats() if self._faults is not None else None
                ),
                "sharded": sharded.sharded_stats(),
            }

    def __repr__(self) -> str:
        return f"Scheduler(workers={self.workers})"
