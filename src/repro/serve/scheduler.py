"""Request scheduler: queueing, single-flight, batching, fault tolerance.

The scheduler turns a stream of :class:`~repro.serve.request.Request`
objects into session work on a pool of worker threads, with two
serving-layer optimizations the one-shot front-ends cannot express:

* **single-flight coalescing** — concurrent requests with the same
  signature against the same session attach to one in-flight execution and
  all receive its result; the duplicate work is never enqueued (and once a
  flight completes, later duplicates are answered by the session memo);
* **sweep batching** — per-fact Shapley/Banzhaf requests pending against
  one session are claimed together by one worker; when the batch covers
  enough of the endogenous facts, the worker runs **one**
  ``shapley_values()``/``banzhaf_values()`` sweep (memoized on the session)
  and answers every claimed request from it, instead of paying the
  2-run reduction once per request.  Smaller batches still drain on one
  worker — per-fact requests serialize on the session's Shapley lock
  anyway, so claiming them frees the other workers for other families.

On top of that sits the robustness layer (all features default-off, so an
unconfigured scheduler behaves — and costs — exactly like the
pre-robustness one):

* **admission control** (:class:`~repro.serve.admission.AdmissionControl`)
  — a bounded pending queue (reject with
  :class:`~repro.exceptions.QueueFullError` or shed the oldest queued
  request), per-family token-bucket rate limiting, and per-request
  deadlines checked **at claim time**: an expired request resolves with
  :class:`~repro.exceptions.DeadlineExceeded` before any execution, so
  queued-but-dead work costs nothing;
* **retries** (:class:`~repro.serve.admission.RetryPolicy`) — transient
  execution failures retry with exponential backoff + jitter under a
  per-request budget;
* **worker supervision** — a worker that dies on an escaped exception
  (a bug, or an injected :class:`~repro.serve.faults.WorkerKilled`) is
  detected and respawned; its claimed flights are re-queued (up to
  ``requeue_limit`` deaths per flight) or failed with
  :class:`~repro.exceptions.TransientError` — never stranded;
* **circuit breaking** (:class:`~repro.serve.admission.CircuitBreaker`) —
  repeated kernel failures degrade a session's tier to the batched
  kernels (bit-identical results) and, if failures persist, fail requests
  fast with :class:`~repro.exceptions.CircuitOpenError` until a cool-down;
* **fault injection** (:class:`~repro.serve.faults.FaultInjector`) — the
  seeded chaos harness behind the ``tests/test_faults.py`` suite; when
  installed it also supplies the scheduler's clock (skewable).

Execution itself goes through
:meth:`~repro.engine.session.EngineSession.request`, so every answer is
memoized under its signature + database-version fingerprint and stays
bit-identical to a serial one-shot evaluation (same code path, same fold
order).
"""

from __future__ import annotations

import queue
import random
import threading
import time
from concurrent.futures import Future, InvalidStateError

from repro.core import sharded
from repro.core.sharded import validate_worker_count
from repro.engine.session import EngineSession
from repro.exceptions import (
    CircuitOpenError,
    DeadlineExceeded,
    QueueFullError,
    RateLimitedError,
    ReproError,
    TransientError,
)
from repro.obs import EventLog, MetricsRegistry, Trace, trace_of
from repro.serve.admission import AdmissionControl, CircuitBreaker, RetryPolicy
from repro.serve.faults import FaultInjector
from repro.serve.request import Request

#: Per-fact families answerable from one whole-instance sweep.
_SWEEPS = {
    "shapley_value": "shapley_values",
    "banzhaf_value": "banzhaf_values",
}

#: Families whose binding-carrying requests batch into one shared columnar
#: scan (:meth:`EngineSession.evaluate_many` → :mod:`repro.core.fused`).
_FUSED_FAMILIES = ("pqe", "expected_count")

#: Every scheduler lifecycle event, by its historical ``stats()`` key.
#: These are the children of ``repro_scheduler_events_total{event=…}``;
#: :meth:`Scheduler.stats` is generated from one snapshot of this family,
#: so the flat keys, the ``batching`` aliases and the Prometheus series
#: can never disagree.
EVENT_COUNTERS = (
    "submitted",
    "coalesced",
    "executed",
    "sweeps",
    "swept_requests",
    "sweep_failures",
    "fused_batches",
    "fused_queries",
    "fused_failures",
    "timeouts",
    "retries",
    "worker_deaths",
    "worker_respawns",
    "requeued",
    "unresolved_at_close",
)

#: The batching-effectiveness subset, nested under ``stats()["batching"]``.
BATCHING_EVENTS = (
    "sweeps",
    "swept_requests",
    "sweep_failures",
    "fused_batches",
    "fused_queries",
    "fused_failures",
)

#: Batching events *also* kept as historical flat ``stats()`` keys.
FLAT_BATCHING_ALIASES = (
    "sweeps",
    "swept_requests",
    "sweep_failures",
    "fused_batches",
    "fused_queries",
)

#: The headline counters the CLI ``--stats`` printer reports, in print
#: order.  Each name is a flat :meth:`Scheduler.stats` key; the printer
#: iterates this tuple, so adding a counter here is the whole change.
HEADLINE_COUNTERS = (
    "coalesced",
    "executed",
    "sweeps",
    "swept_requests",
    "sweep_failures",
    "fused_batches",
    "fused_queries",
    "rejected",
    "shed",
    "rate_limited",
    "timeouts",
    "retries",
    "worker_respawns",
    "breaker_trips",
)


def classify_outcome(error: BaseException | None) -> str:
    """The ``repro_requests_total`` outcome label for a resolution *error*.

    ``None`` is ``"ok"``; the serving-layer error taxonomy maps onto
    stable label values so dashboards can split availability by cause.

    >>> classify_outcome(None)
    'ok'
    >>> classify_outcome(DeadlineExceeded("late"))
    'deadline'
    """
    if error is None:
        return "ok"
    if isinstance(error, DeadlineExceeded):
        return "deadline"
    # RateLimitedError subclasses QueueFullError: check the subclass first.
    if isinstance(error, RateLimitedError):
        return "rate_limited"
    if isinstance(error, QueueFullError):
        return "queue_full"
    if isinstance(error, CircuitOpenError):
        return "circuit_open"
    if isinstance(error, TransientError):
        return "transient"
    return "error"


def _fusable(request: Request) -> bool:
    """Whether *request* can join a shared-scan fused batch."""
    return (
        request.family in _FUSED_FAMILIES
        and "binding" in request.kwargs
    )

_SHUTDOWN = object()


class _Flight:
    """One in-flight signature: the execution every duplicate attaches to.

    ``entries`` pairs each attached future with its absolute expiry (or
    ``None``); ``requeues`` counts worker deaths survived, bounding how
    often supervision may re-queue the flight before failing it.
    """

    __slots__ = ("session", "request", "entries", "claimed", "requeues")

    def __init__(self, session: EngineSession, request: Request):
        self.session = session
        self.request = request
        self.entries: list[tuple[Future, float | None]] = []
        self.claimed = False
        self.requeues = 0


class Scheduler:
    """Runs session requests on worker threads with coalescing and batching.

    Parameters
    ----------
    workers:
        Worker-thread count (validated by
        :func:`repro.core.sharded.validate_worker_count`, the single
        helper shared with the CLI and ``--shard-workers``).  Results are
        independent of the count — the concurrency stress tests assert
        bit-identical answers against serial evaluation for every tier.
    shard_workers:
        When set, configures the process pool of the sharded tier
        (:mod:`repro.core.sharded`).  Worker threads running sessions of a
        ``kernel_mode="sharded"`` engine dispatch their plan executions to
        that shared pool, so N serve workers stop competing for one GIL —
        the threads shape latency, the processes carry the fold work.
    admission:
        Admission policy (queue bound, rate limits, default deadline).
        Defaults to a no-limits :class:`AdmissionControl`.
    retry:
        Retry policy for transient failures.  Defaults to no retries.
    breaker:
        Optional per-session :class:`CircuitBreaker`.
    faults:
        Optional seeded :class:`FaultInjector`; when given it also
        supplies the scheduler's clock (so deadlines and breaker
        cool-downs honor injected skew).
    requeue_limit:
        How many worker deaths one flight survives (re-queued each time)
        before its futures fail with :class:`TransientError`.
    event_log:
        Optional :class:`repro.obs.EventLog`; every resolved request's
        trace is appended to it as one JSON line (the flight recorder).
    """

    def __init__(
        self,
        workers: int = 4,
        *,
        admission: AdmissionControl | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        faults: FaultInjector | None = None,
        requeue_limit: int = 5,
        shard_workers: int | None = None,
        event_log: EventLog | None = None,
    ):
        validate_worker_count(workers, what="worker")
        self.workers = workers
        self.shard_workers = shard_workers
        if shard_workers is not None:
            sharded.set_shard_workers(shard_workers)
        if faults is not None:
            # Chaos wiring: the injector decides, per sharded dispatch,
            # whether to SIGKILL one pool process (see FaultPlan).
            sharded.set_shard_fault_hook(faults.on_shard_dispatch)
        self.requeue_limit = requeue_limit
        self._admission = admission if admission is not None else AdmissionControl()
        self._retry = retry if retry is not None else RetryPolicy()
        self._breaker = breaker
        self._faults = faults
        self._event_log = event_log
        self._clock = faults.clock if faults is not None else time.monotonic
        self._retry_rng = (
            faults.retry_rng() if faults is not None else random.Random(0x5EED)
        )
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._pending: dict[tuple, _Flight] = {}
        self._queued = 0  # unclaimed flights (the bounded-queue depth)
        self._closed = False
        # Every work/robustness counter lives on the registry; stats() and
        # the /metrics exposition are two views over the same children.
        self.metrics_registry = MetricsRegistry()
        events = self.metrics_registry.counter(
            "repro_scheduler_events_total",
            "Scheduler lifecycle events (submissions, batches, faults).",
            labels=("event",),
        )
        self._events = {name: events.labels(event=name) for name in EVENT_COUNTERS}
        self._requests_total = self.metrics_registry.counter(
            "repro_requests_total",
            "Resolved (or rejected-at-submit) requests by family and outcome.",
            labels=("family", "outcome"),
        )
        self._latency = self.metrics_registry.histogram(
            "repro_request_latency_seconds",
            "End-to-end request latency (submission to resolution).",
            labels=("family",),
        )
        self.metrics_registry.gauge(
            "repro_queue_depth", "Unclaimed flights waiting in the queue."
        ).labels().set_function(lambda: self._queued)
        self.metrics_registry.gauge(
            "repro_pending_flights",
            "In-flight signatures (queued or executing).",
        ).labels().set_function(lambda: len(self._pending))
        self.metrics_registry.gauge(
            "repro_scheduler_workers", "Configured worker-thread count."
        ).labels().set(workers)
        self._admission.observe(self.metrics_registry)
        if self._breaker is not None:
            self._breaker.observe(self.metrics_registry)
        self._threads = [
            threading.Thread(
                target=self._work, name=f"repro-serve-{index}", daemon=True
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def submit(self, session: EngineSession, request: Request) -> Future:
        """Enqueue *request* against *session*; returns a future.

        A request whose signature is already in flight on the same session
        coalesces onto the existing execution instead of enqueueing.
        Admission control runs first: an open circuit raises
        :class:`CircuitOpenError`, a dry token bucket
        :class:`~repro.exceptions.RateLimitedError`, and a full queue
        :class:`QueueFullError` (or sheds the oldest queued request,
        depending on the policy).
        """
        request.validate()
        key = (id(session), request.signature)
        future: Future = Future()
        trace = Trace(request.family)
        trace.mark("submitted")
        future._repro_trace = trace
        object.__setattr__(request, "trace", trace)
        now = self._clock()
        shed: list[tuple[Future, BaseException]] = []
        try:
            with self._lock:
                if self._closed:
                    raise ReproError("scheduler is closed")
                if self._breaker is not None and self._breaker.reject(
                    session, now
                ):
                    raise CircuitOpenError(
                        "circuit open for this session; retry after cool-down"
                    )
                self._admission.admit(request.family, now)
                expiry = self._admission.expiry_for(request, now)
                flight = self._pending.get(key)
                if flight is not None:
                    flight.entries.append((future, expiry))
                    self._events["submitted"].inc()
                    self._events["coalesced"].inc()
                    trace.mark("coalesced")
                    return future
                limit = self._admission.queue_limit
                if limit is not None and self._queued >= limit:
                    if self._admission.shed_policy == "reject":
                        self._admission.count_rejected()
                        raise QueueFullError(
                            f"request queue is full "
                            f"({self._queued}/{limit} pending)"
                        )
                    shed = self._shed_oldest_locked(limit)
                flight = _Flight(session, request)
                flight.entries.append((future, expiry))
                self._pending[key] = flight
                self._queued += 1
                self._events["submitted"].inc()
                trace.mark("enqueued")
                # Enqueue under the lock: close() also sets _closed under
                # it, so every accepted flight's key is in the queue before
                # the shutdown sentinels — no future can be left unserved.
                self._queue.put(key)
            return future
        except BaseException as error:
            # Rejected at submission: no future resolution will happen, so
            # account the request (and close its trace) here.
            outcome = classify_outcome(error)
            trace.mark("resolved", outcome=outcome)
            self._requests_total.labels(
                family=request.family, outcome=outcome
            ).inc()
            if self._event_log is not None:
                self._event_log.record(trace)
            raise
        finally:
            for victim, error in shed:
                self._resolve(victim, None, error)

    def _shed_oldest_locked(
        self, limit: int
    ) -> list[tuple[Future, BaseException]]:
        """Drop the oldest unclaimed flight(s) to make room (lock held)."""
        shed: list[tuple[Future, BaseException]] = []
        for key, flight in list(self._pending.items()):
            if self._queued < limit:
                break
            if flight.claimed:
                continue
            del self._pending[key]
            self._queued -= 1
            self._admission.count_shed()
            error = QueueFullError(
                f"shed from a full request queue (limit {limit})"
            )
            shed.extend((future, error) for future, _expiry in flight.entries)
        return shed

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _work(self) -> None:
        while True:
            key = self._queue.get()
            if key is _SHUTDOWN:
                return
            batch = self._claim(key)
            if not batch:
                continue
            try:
                if self._faults is not None:
                    self._faults.on_claim()
                self._execute(batch)
            except BaseException as error:
                # Supervision: recover the claimed flights, respawn a
                # replacement worker, and let this thread die.
                self._recover(batch, error)
                return

    def _claim_one_locked(
        self,
        key: tuple,
        flight: _Flight,
        now: float,
        to_resolve: list[tuple[Future, BaseException | None, object]],
    ) -> bool:
        """Claim *flight* for execution, enforcing deadlines and the breaker.

        Expired entries resolve with :class:`DeadlineExceeded` — checked
        here, at claim time, so queued-but-dead work never executes.
        Returns ``False`` when nothing is left to execute (the flight is
        then dropped from the pending table).
        """
        live = []
        for future, expiry in flight.entries:
            if expiry is not None and now >= expiry:
                self._events["timeouts"].inc()
                to_resolve.append(
                    (future, DeadlineExceeded(
                        f"deadline expired before execution: {flight.request}"
                    ), None)
                )
            else:
                live.append((future, expiry))
        flight.entries = live
        if not live:
            del self._pending[key]
            self._queued -= 1
            return False
        if self._breaker is not None and self._breaker.reject(
            flight.session, now
        ):
            error = CircuitOpenError(
                "circuit open for this session; retry after cool-down"
            )
            to_resolve.extend((future, error, None) for future, _ in live)
            del self._pending[key]
            self._queued -= 1
            return False
        flight.claimed = True
        self._queued -= 1
        for future, _expiry in live:
            trace = trace_of(future)
            if trace is not None:
                trace.mark("claimed")
        return True

    def _claim(self, key: tuple) -> list[tuple[tuple, _Flight]]:
        """Claim the flight behind *key* plus any batchable siblings."""
        now = self._clock()
        to_resolve: list = []
        batch: list[tuple[tuple, _Flight]] = []
        with self._lock:
            flight = self._pending.get(key)
            if (
                flight is not None
                and not flight.claimed
                and self._claim_one_locked(key, flight, now, to_resolve)
            ):
                batch.append((key, flight))
                if flight.request.family in _SWEEPS or _fusable(
                    flight.request
                ):
                    lead_fusable = _fusable(flight.request)
                    for other_key, other in list(self._pending.items()):
                        if (
                            other is not flight
                            and not other.claimed
                            and other.session is flight.session
                            and other.request.family == flight.request.family
                            and (not lead_fusable or _fusable(other.request))
                            and self._claim_one_locked(
                                other_key, other, now, to_resolve
                            )
                        ):
                            batch.append((other_key, other))
        for future, error, value in to_resolve:
            self._resolve(future, value, error)
        return batch

    def _sweep_pays(self, session: EngineSession, batch_size: int) -> bool:
        """Whether one full sweep beats ``batch_size`` per-fact reductions.

        A sweep costs ``2·|Dn|`` runs, the individual requests ``2·k``; the
        sweep wins outright at ``k ≥ |Dn|/2`` — and additionally leaves the
        memoized sweep behind for every future per-fact request, which is
        why the threshold is not simply ``k ≥ |Dn|``.
        """
        try:
            endogenous = session.shapley_instance().endogenous_count
        except ReproError:
            return False
        return 2 * batch_size >= endogenous

    def _execute_flight(
        self, session: EngineSession, family: str, flight: _Flight
    ) -> tuple[_Flight, object, BaseException | None]:
        """One flight's execution: fault injection, retries, breaker votes."""
        attempts = self._retry.max_retries + 1
        for attempt in range(attempts):
            try:
                if self._faults is not None:
                    self._faults.before_attempt()
                value = session.request(
                    family,
                    trace=trace_of(flight.request),
                    **flight.request.kwargs,
                )
            except BaseException as error:
                if self._breaker is not None:
                    self._breaker.record_failure(session, error, self._clock())
                if attempt + 1 < attempts and self._retry.retriable(error):
                    self._events["retries"].inc()
                    delay = self._retry.delay_for(attempt, self._retry_rng)
                    if delay > 0:
                        time.sleep(delay)
                    continue
                return (flight, None, error)
            else:
                if self._breaker is not None:
                    self._breaker.record_success(session, self._clock())
                return (flight, value, None)
        raise AssertionError("unreachable: the retry loop always returns")

    def _execute(self, batch: list[tuple[tuple, _Flight]]) -> None:
        first = batch[0][1]
        session = first.session
        family = first.request.family
        sweep_family = _SWEEPS.get(family)
        if (
            sweep_family is not None
            and len(batch) >= 2
            and self._sweep_pays(session, len(batch))
        ):
            try:
                if self._faults is not None:
                    self._faults.before_attempt()
                session.request(sweep_family)
                self._events["sweeps"].inc()
                self._events["swept_requests"].inc(len(batch))
                self._mark_batch(batch, "swept", len(batch))
            except Exception:
                # Counted, never swallowed silently: the batch falls
                # through to per-flight execution below, which surfaces
                # the error on the request(s) it actually belongs to (and
                # retries transient failures per flight).
                self._events["sweep_failures"].inc()
        elif _fusable(first.request) and len(batch) >= 2:
            # Shared-scan fusion: answer the whole claimed batch in one
            # stacked columnar pass (bit-identical to per-flight serial by
            # construction — see repro.core.fused).  Like the sweep branch
            # this only *warms the session memo*; the per-flight loop below
            # then serves each request from it through the normal breaker,
            # retry and resolution bookkeeping.  On any failure the batch
            # falls through to per-flight execution, which re-raises the
            # error on the request(s) it belongs to.
            try:
                if self._faults is not None:
                    self._faults.before_attempt()
                session.evaluate_many(
                    [flight.request for _key, flight in batch]
                )
                self._events["fused_batches"].inc()
                self._events["fused_queries"].inc(len(batch))
                self._mark_batch(batch, "fused", len(batch))
            except Exception:
                self._events["fused_failures"].inc()
        outcomes = []
        for _key, flight in batch:
            outcomes.append(self._execute_flight(session, family, flight))
        self._events["executed"].inc(len(batch))
        with self._lock:
            resolved = []
            for (key, flight), (_f, value, error) in zip(batch, outcomes):
                if self._pending.get(key) is flight:
                    del self._pending[key]
                # Snapshot under the lock: a duplicate submitted after this
                # point starts a fresh flight (served by the memo).
                resolved.append((list(flight.entries), value, error))
        for entries, value, error in resolved:
            for future, _expiry in entries:
                self._resolve(future, value, error)

    @staticmethod
    def _mark_batch(
        batch: list[tuple[tuple, _Flight]], stage: str, size: int
    ) -> None:
        """Mark every live trace in *batch* with a batching *stage*."""
        for _key, flight in batch:
            for future, _expiry in flight.entries:
                trace = trace_of(future)
                if trace is not None:
                    trace.mark(stage, batch_size=size)

    def _resolve(
        self, future: Future, value: object, error: BaseException | None
    ) -> None:
        """Resolve *future*, tolerating cancellation and double resolution.

        A future cancelled while queued must be skipped — calling
        ``set_result`` on it raises ``InvalidStateError`` and would kill
        the worker thread, stranding every other pending request.  A
        future already failed by ``close(timeout=…)`` while its execution
        straggled is likewise left alone.

        This is also where a request's observability closes out: the
        outcome counter, the latency histogram and the trace's final
        ``resolved`` mark all happen here, so every accepted future is
        accounted exactly once.
        """
        try:
            if not future.set_running_or_notify_cancel():
                self._account(future, "cancelled")
                return
            if error is None:
                future.set_result(value)
            else:
                future.set_exception(error)
        except InvalidStateError:
            return
        self._account(future, classify_outcome(error))

    def _account(self, future: Future, outcome: str) -> None:
        """Record one future's final outcome, latency and trace line."""
        trace = trace_of(future)
        if trace is None:
            return
        trace.mark("resolved", outcome=outcome)
        total = trace.total
        self._requests_total.labels(
            family=trace.family, outcome=outcome
        ).inc()
        if total is not None:
            self._latency.labels(family=trace.family).observe(total)
        if self._event_log is not None:
            self._event_log.record(trace)

    def _recover(self, batch: list[tuple[tuple, _Flight]], error: BaseException) -> None:
        """Worker supervision: re-queue or fail the dead worker's flights.

        Called from the dying worker thread itself.  Each claimed flight is
        re-queued (so a surviving worker serves it) unless it already
        survived ``requeue_limit`` deaths or the scheduler is closing — in
        both cases its futures fail with :class:`TransientError` instead of
        stranding.  A replacement worker is spawned unless closing.
        """
        to_fail: list[tuple[Future, float | None]] = []
        replacement = None
        with self._lock:
            self._events["worker_deaths"].inc()
            respawn = not self._closed
            for key, flight in batch:
                if self._pending.get(key) is not flight:
                    continue
                if respawn and flight.requeues < self.requeue_limit:
                    flight.requeues += 1
                    flight.claimed = False
                    self._queued += 1
                    self._events["requeued"].inc()
                    self._queue.put(key)
                else:
                    del self._pending[key]
                    to_fail.extend(flight.entries)
            if respawn:
                self._events["worker_respawns"].inc()
                replacement = threading.Thread(
                    target=self._work,
                    name=(
                        "repro-serve-respawn-"
                        f"{self._events['worker_respawns'].value}"
                    ),
                    daemon=True,
                )
                current = threading.current_thread()
                if current in self._threads:
                    self._threads.remove(current)
                self._threads.append(replacement)
        if to_fail:
            wrapped = TransientError(
                f"worker thread died while serving this request: {error!r}"
            )
            for future, _expiry in to_fail:
                self._resolve(future, None, wrapped)
        if replacement is not None:
            replacement.start()

    # ------------------------------------------------------------------
    # Lifecycle / observability
    # ------------------------------------------------------------------
    def close(self, wait: bool = True, timeout: float | None = None) -> None:
        """Stop accepting requests, drain the queue, join the workers.

        Already-submitted requests are still executed (the shutdown
        sentinels queue behind them); ``wait=False`` skips the join.
        ``timeout`` bounds the total join time, so a wedged worker cannot
        hang ``close(wait=True)`` forever.  After the join, every accepted
        future is guaranteed resolved: any flight still pending (a worker
        crashed after the sentinels were queued, or the timeout fired
        first) fails with :class:`ReproError` rather than stranding its
        futures.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            threads = list(self._threads)
        if self._faults is not None:
            sharded.set_shard_fault_hook(None)
        for _ in threads:
            self._queue.put(_SHUTDOWN)
        if not wait:
            return
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        for thread in threads:
            remaining = (
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            thread.join(remaining)
        leftovers: list[tuple[Future, float | None]] = []
        with self._lock:
            for key, flight in list(self._pending.items()):
                leftovers.extend(flight.entries)
                del self._pending[key]
            self._queued = 0
            if leftovers:
                self._events["unresolved_at_close"].inc(len(leftovers))
        if leftovers:
            error = ReproError(
                "scheduler closed before this request resolved"
            )
            for future, _expiry in leftovers:
                self._resolve(future, None, error)

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def stats(self) -> dict:
        """Work + robustness counters (submissions, rejections, retries…).

        Flat keys cover the headline counters the CLI prints (see
        :data:`HEADLINE_COUNTERS`); the nested ``admission``/``breaker``/
        ``faults`` entries carry each policy object's full view
        (``breaker``/``faults`` are ``None`` when not installed).  Batching
        effectiveness lives in the ``"batching"`` sub-dict — Shapley/
        Banzhaf sweep counters next to shared-scan fusion counters — with
        the historical flat aliases (:data:`FLAT_BATCHING_ALIASES`) kept.

        Every number is read from **one** snapshot of
        :attr:`metrics_registry`'s event family, so the flat keys, the
        ``batching`` aliases and the Prometheus ``/metrics`` series are
        views over the same counts and cannot drift apart.
        """
        admission = self._admission.stats()
        breaker = self._breaker.stats() if self._breaker is not None else None
        events = {
            name: child.value for name, child in self._events.items()
        }
        with self._lock:
            pending = len(self._pending)
            queued = self._queued
        return {
            "workers": self.workers,
            "submitted": events["submitted"],
            "coalesced": events["coalesced"],
            "executed": events["executed"],
            "batching": {name: events[name] for name in BATCHING_EVENTS},
            **{name: events[name] for name in FLAT_BATCHING_ALIASES},
            "pending": pending,
            "queued": queued,
            "rejected": admission["rejected"],
            "shed": admission["shed"],
            "rate_limited": admission["rate_limited"],
            "timeouts": events["timeouts"],
            "retries": events["retries"],
            "worker_deaths": events["worker_deaths"],
            "worker_respawns": events["worker_respawns"],
            "requeued": events["requeued"],
            "unresolved_at_close": events["unresolved_at_close"],
            "breaker_trips": breaker["trips"] if breaker else 0,
            "breaker_open_rejections": (
                breaker["open_rejections"] if breaker else 0
            ),
            "shard_workers": sharded.shard_workers(),
            "admission": admission,
            "breaker": breaker,
            "faults": (
                self._faults.stats() if self._faults is not None else None
            ),
            "sharded": sharded.sharded_stats(),
        }

    def __repr__(self) -> str:
        return f"Scheduler(workers={self.workers})"
