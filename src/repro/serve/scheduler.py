"""Request scheduler: thread-safe queueing, single-flight, sweep batching.

The scheduler turns a stream of :class:`~repro.serve.request.Request`
objects into session work on a pool of worker threads, with two
serving-layer optimizations the one-shot front-ends cannot express:

* **single-flight coalescing** — concurrent requests with the same
  signature against the same session attach to one in-flight execution and
  all receive its result; the duplicate work is never enqueued (and once a
  flight completes, later duplicates are answered by the session memo);
* **sweep batching** — per-fact Shapley/Banzhaf requests pending against
  one session are claimed together by one worker; when the batch covers
  enough of the endogenous facts, the worker runs **one**
  ``shapley_values()``/``banzhaf_values()`` sweep (memoized on the session)
  and answers every claimed request from it, instead of paying the
  2-run reduction once per request.  Smaller batches still drain on one
  worker — per-fact requests serialize on the session's Shapley lock
  anyway, so claiming them frees the other workers for other families.

Execution itself goes through
:meth:`~repro.engine.session.EngineSession.request`, so every answer is
memoized under its signature + database-version fingerprint and stays
bit-identical to a serial one-shot evaluation (same code path, same fold
order).
"""

from __future__ import annotations

import queue
import threading
from concurrent.futures import Future

from repro.engine.session import EngineSession
from repro.exceptions import ReproError
from repro.serve.request import Request

#: Per-fact families answerable from one whole-instance sweep.
_SWEEPS = {
    "shapley_value": "shapley_values",
    "banzhaf_value": "banzhaf_values",
}

_SHUTDOWN = object()


class _Flight:
    """One in-flight signature: the execution every duplicate attaches to."""

    __slots__ = ("session", "request", "futures", "claimed")

    def __init__(self, session: EngineSession, request: Request):
        self.session = session
        self.request = request
        self.futures: list[Future] = []
        self.claimed = False


class Scheduler:
    """Runs session requests on worker threads with coalescing and batching.

    Parameters
    ----------
    workers:
        Worker-thread count (≥ 1).  Results are independent of the count —
        the concurrency stress tests assert bit-identical answers against
        serial evaluation for every tier.
    """

    def __init__(self, workers: int = 4):
        if workers < 1:
            raise ReproError(f"worker count must be positive, got {workers}")
        self.workers = workers
        self._queue: "queue.SimpleQueue" = queue.SimpleQueue()
        self._lock = threading.Lock()
        self._pending: dict[tuple, _Flight] = {}
        self._closed = False
        self._submitted = 0
        self._coalesced = 0
        self._executed = 0
        self._sweeps = 0
        self._swept_requests = 0
        self._threads = [
            threading.Thread(
                target=self._work, name=f"repro-serve-{index}", daemon=True
            )
            for index in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def submit(self, session: EngineSession, request: Request) -> Future:
        """Enqueue *request* against *session*; returns a future.

        A request whose signature is already in flight on the same session
        coalesces onto the existing execution instead of enqueueing.
        """
        request.validate()
        key = (id(session), request.signature)
        future: Future = Future()
        with self._lock:
            if self._closed:
                raise ReproError("scheduler is closed")
            self._submitted += 1
            flight = self._pending.get(key)
            if flight is not None:
                flight.futures.append(future)
                self._coalesced += 1
                return future
            flight = _Flight(session, request)
            flight.futures.append(future)
            self._pending[key] = flight
            # Enqueue under the lock: close() also sets _closed under it,
            # so every accepted flight's key is in the queue before the
            # shutdown sentinels — no future can be left unserved.
            self._queue.put(key)
        return future

    # ------------------------------------------------------------------
    # Worker side
    # ------------------------------------------------------------------
    def _work(self) -> None:
        while True:
            key = self._queue.get()
            if key is _SHUTDOWN:
                return
            with self._lock:
                flight = self._pending.get(key)
                if flight is None or flight.claimed:
                    continue  # already served (or claimed into a batch)
                flight.claimed = True
                batch = [(key, flight)]
                if flight.request.family in _SWEEPS:
                    for other_key, other in self._pending.items():
                        if (
                            other is not flight
                            and not other.claimed
                            and other.session is flight.session
                            and other.request.family == flight.request.family
                        ):
                            other.claimed = True
                            batch.append((other_key, other))
            self._execute(batch)

    def _sweep_pays(self, session: EngineSession, batch_size: int) -> bool:
        """Whether one full sweep beats ``batch_size`` per-fact reductions.

        A sweep costs ``2·|Dn|`` runs, the individual requests ``2·k``; the
        sweep wins outright at ``k ≥ |Dn|/2`` — and additionally leaves the
        memoized sweep behind for every future per-fact request, which is
        why the threshold is not simply ``k ≥ |Dn|``.
        """
        try:
            endogenous = session.shapley_instance().endogenous_count
        except ReproError:
            return False
        return 2 * batch_size >= endogenous

    def _execute(self, batch: list[tuple[tuple, _Flight]]) -> None:
        first = batch[0][1]
        session = first.session
        family = first.request.family
        sweep_family = _SWEEPS.get(family)
        if (
            sweep_family is not None
            and len(batch) >= 2
            and self._sweep_pays(session, len(batch))
        ):
            try:
                session.request(sweep_family)
                with self._lock:
                    self._sweeps += 1
                    self._swept_requests += len(batch)
            except Exception:
                # Per-flight execution below surfaces the error on the
                # request(s) it actually belongs to.
                pass
        outcomes = []
        for _key, flight in batch:
            try:
                outcomes.append(
                    (flight, session.request(family, **flight.request.kwargs), None)
                )
            except BaseException as error:
                outcomes.append((flight, None, error))
        with self._lock:
            self._executed += len(batch)
            resolved = []
            for (key, flight), (_f, value, error) in zip(batch, outcomes):
                if self._pending.get(key) is flight:
                    del self._pending[key]
                # Snapshot under the lock: a duplicate submitted after this
                # point starts a fresh flight (served by the memo).
                resolved.append((list(flight.futures), value, error))
        for futures, value, error in resolved:
            for future in futures:
                # A future cancelled while queued must be skipped — calling
                # set_result on it raises InvalidStateError and would kill
                # this worker thread, stranding every other pending request.
                # Once this transition succeeds nothing else can cancel it.
                if not future.set_running_or_notify_cancel():
                    continue
                if error is None:
                    future.set_result(value)
                else:
                    future.set_exception(error)

    # ------------------------------------------------------------------
    # Lifecycle / observability
    # ------------------------------------------------------------------
    def close(self, wait: bool = True) -> None:
        """Stop accepting requests, drain the queue, join the workers.

        Already-submitted requests are still executed (the shutdown
        sentinels queue behind them); ``wait=False`` skips the join.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        for _ in self._threads:
            self._queue.put(_SHUTDOWN)
        if wait:
            for thread in self._threads:
                thread.join()

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def stats(self) -> dict[str, int]:
        """Work counters: submissions, coalesced duplicates, sweep batches."""
        with self._lock:
            return {
                "workers": self.workers,
                "submitted": self._submitted,
                "coalesced": self._coalesced,
                "executed": self._executed,
                "sweeps": self._sweeps,
                "swept_requests": self._swept_requests,
                "pending": len(self._pending),
            }

    def __repr__(self) -> str:
        return f"Scheduler(workers={self.workers})"
