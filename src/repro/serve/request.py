"""The serving subsystem's unit of work: hashable, coalescable requests.

A :class:`Request` names an evaluation family (one of
:data:`repro.engine.session.REQUEST_FAMILIES`) and carries its parameters in
a canonical, hashable form.  Two requests with equal :attr:`signature` are
interchangeable — the scheduler's single-flight coalescing and the session
result memo both key on it.

>>> from repro.serve import Request
>>> Request.make("pqe", exact=False) == Request.make("pqe")
True
>>> str(Request.make("pqe", exact=True))
'pqe(exact=True)'
>>> Request.make("pqe").signature
('pqe', ())

A request may carry a relative ``deadline`` (seconds from submission);
the deadline is admission metadata, **not** identity — a deadlined
request still coalesces with (and memo-hits) its undeadlined twin:

>>> Request.make("pqe", deadline=0.5) == Request.make("pqe")
True
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.engine.session import REQUEST_FAMILIES, canonical_params
from repro.exceptions import ReproError

Params = tuple[tuple[str, object], ...]


@dataclass(frozen=True)
class Request:
    """One evaluation request: a family name plus canonicalized parameters.

    Construct through :meth:`make` (keyword parameters, sorted into the
    canonical tuple) or directly with a ``params`` tuple; either way the
    parameters are sorted and explicitly-spelled handler defaults dropped
    (``pqe(exact=False)`` ≡ ``pqe()``), so equal-semantics requests carry
    equal signatures.  Instances are frozen and hashable, so they can key
    queues, in-flight tables and memo dictionaries.

    ``deadline`` — optional, relative seconds from submission — is
    excluded from equality and hashing (``compare=False``): it shapes
    *when* the answer is still wanted, not *what* is asked, so deadlined
    requests coalesce freely.  Expiry is enforced by the scheduler at
    claim time and resolves the future with
    :class:`~repro.exceptions.DeadlineExceeded` before any execution.

    ``trace`` — a :class:`repro.obs.Trace` the scheduler attaches at
    submission — is likewise observability metadata, not identity: it is
    excluded from equality, hashing and ``repr``, and the same trace is
    reachable from the returned future via :func:`repro.obs.trace_of`.
    """

    family: str
    params: Params = field(default_factory=tuple)
    deadline: float | None = field(default=None, compare=False)
    trace: object = field(default=None, compare=False, repr=False)

    def __post_init__(self) -> None:
        normalized = canonical_params(self.family, dict(self.params))
        object.__setattr__(
            self, "params", tuple(sorted(normalized.items()))
        )

    @classmethod
    def make(
        cls, family: str, *, deadline: float | None = None, **params
    ) -> "Request":
        """``Request.make("shapley_value", fact=f)`` — the ergonomic spelling."""
        return cls(family, tuple(sorted(params.items())), deadline)

    @property
    def kwargs(self) -> dict[str, object]:
        """The parameters as keyword arguments for the session handler."""
        return dict(self.params)

    @property
    def signature(self) -> tuple:
        """The coalescing/memo key: requests with equal signatures are one."""
        return (self.family, self.params)

    def validate(self) -> "Request":
        """Raise :class:`~repro.exceptions.ReproError` for unknown families."""
        if self.family not in REQUEST_FAMILIES:
            raise ReproError(
                f"unknown request family {self.family!r}; known families: "
                f"{sorted(REQUEST_FAMILIES)}"
            )
        return self

    def __str__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.family}({inner})"
