"""Admission control policy: bounded queues, rate limits, retries, breakers.

This module separates admission *policy* from scheduler *execution* (the
MicroSentinel ``token_bucket``/``mode_controller`` split): every object
here is a policy holder the :class:`~repro.serve.scheduler.Scheduler`
consults at well-defined points, with its own counters for ``stats()``.

* :class:`AdmissionControl` — what may enter the queue: a bounded pending
  queue (reject or shed-oldest on overflow), per-family
  :class:`TokenBucket` rate limiting, and the default per-request deadline;
* :class:`RetryPolicy` — how transient execution failures are retried:
  exponential backoff with jitter under a per-request retry budget;
* :class:`CircuitBreaker` — graceful degradation: repeated kernel failures
  trip a session's execution tier down to the batched kernels
  (bit-identical results), and persistent failures open the circuit so
  requests fail fast with
  :class:`~repro.exceptions.CircuitOpenError` until a cool-down elapses.

All deadline/cool-down arithmetic takes explicit ``now`` values from the
scheduler's clock, so the fault-injection harness
(:mod:`repro.serve.faults`) can skew time deterministically.

>>> from repro.serve.admission import TokenBucket
>>> bucket = TokenBucket(rate=1.0, burst=2.0)
>>> bucket.try_acquire(now=0.0), bucket.try_acquire(now=0.0)
(True, True)
>>> bucket.try_acquire(now=0.0)   # burst spent, no time passed
False
>>> bucket.try_acquire(now=1.0)   # one second refills one token
True
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

# The one worker-count validator, shared by Scheduler ``workers=``, the
# sharded tier's process pool and the CLI's ``--workers``/
# ``--shard-workers`` — re-exported here as part of the admission-policy
# surface so every serving entry point agrees on the accepted range.
from repro.core.sharded import validate_worker_count  # noqa: F401
from repro.exceptions import RateLimitedError, ReproError, TransientError

#: Shed policies :class:`AdmissionControl` accepts for a full queue.
SHED_POLICIES = ("reject", "shed_oldest")

#: Kernel modes a :class:`CircuitBreaker` may degrade *from*: only the
#: tiers that can fall to the next rung with bit-identical results.  The
#: sharded tier degrades in two steps — sharded → array → ``degrade_to`` —
#: so a broken process pool first loses only the parallelism, not the
#: columnar layout.
_DEGRADABLE_MODES = ("auto", "sharded", "array")


class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/second, ``burst`` cap.

    Time is supplied by the caller (monotonic seconds), never read from a
    wall clock, so buckets are deterministic under the fault harness's
    skewed clock and trivially testable.
    """

    __slots__ = ("rate", "burst", "_tokens", "_last", "_lock")

    def __init__(self, rate: float, burst: float):
        if rate <= 0:
            raise ReproError(f"token bucket rate must be positive, got {rate}")
        if burst < 1:
            raise ReproError(f"token bucket burst must be >= 1, got {burst}")
        self.rate = rate
        self.burst = burst
        self._tokens = burst
        self._last: float | None = None
        self._lock = threading.Lock()

    def try_acquire(self, now: float) -> bool:
        """Take one token at time *now*; ``False`` when the bucket is dry."""
        with self._lock:
            if self._last is not None and now > self._last:
                self._tokens = min(
                    self.burst, self._tokens + (now - self._last) * self.rate
                )
            self._last = now if self._last is None else max(self._last, now)
            if self._tokens >= 1.0:
                self._tokens -= 1.0
                return True
            return False


class AdmissionControl:
    """Submit-time admission policy for the scheduler's request queue.

    Parameters
    ----------
    queue_limit:
        Maximum number of *unclaimed* pending flights.  ``None`` (the
        default) leaves the queue unbounded — the pre-robustness behavior.
    shed_policy:
        What to do with a submission that finds the queue full:
        ``"reject"`` raises :class:`~repro.exceptions.QueueFullError` at the
        submitter, ``"shed_oldest"`` admits it and resolves the *oldest*
        queued request's futures with that error instead.
    rate_limit:
        Per-family token refill rate in requests/second (one
        :class:`TokenBucket` per request family, created lazily).  ``None``
        disables rate limiting.
    rate_burst:
        Bucket capacity; defaults to ``max(1, rate_limit)``.
    default_deadline:
        Deadline in seconds applied to requests that carry none of their
        own.  ``None`` (default) means no deadline.

    The controller is pure policy + counters; the scheduler owns the queue
    and calls :meth:`admit` / :meth:`expiry_for` under its own locking.
    """

    def __init__(
        self,
        *,
        queue_limit: int | None = None,
        shed_policy: str = "reject",
        rate_limit: float | None = None,
        rate_burst: float | None = None,
        default_deadline: float | None = None,
    ):
        if queue_limit is not None and queue_limit < 1:
            raise ReproError(
                f"queue_limit must be >= 1 or None, got {queue_limit}"
            )
        if shed_policy not in SHED_POLICIES:
            raise ReproError(
                f"unknown shed policy {shed_policy!r}; "
                f"expected one of {SHED_POLICIES}"
            )
        if rate_limit is not None and rate_limit <= 0:
            raise ReproError(
                f"rate_limit must be positive or None, got {rate_limit}"
            )
        if default_deadline is not None and default_deadline < 0:
            raise ReproError(
                f"default_deadline must be >= 0 or None, got {default_deadline}"
            )
        self.queue_limit = queue_limit
        self.shed_policy = shed_policy
        self.rate_limit = rate_limit
        self.rate_burst = (
            max(1.0, rate_limit) if rate_limit is not None and rate_burst is None
            else rate_burst
        )
        self.default_deadline = default_deadline
        self._lock = threading.Lock()
        self._buckets: dict[str, TokenBucket] = {}
        self._rejected = 0
        self._shed = 0
        self._rate_limited = 0

    # ------------------------------------------------------------------
    # Policy checks (called by the scheduler)
    # ------------------------------------------------------------------
    def admit(self, family: str, now: float) -> None:
        """Charge one token for *family* at *now*; raise when rate-limited.

        A no-op when no ``rate_limit`` is configured.  Raises
        :class:`~repro.exceptions.RateLimitedError` (a
        :class:`~repro.exceptions.QueueFullError`) on a dry bucket.
        """
        if self.rate_limit is None:
            return
        with self._lock:
            bucket = self._buckets.get(family)
            if bucket is None:
                bucket = TokenBucket(self.rate_limit, self.rate_burst)
                self._buckets[family] = bucket
        if not bucket.try_acquire(now):
            with self._lock:
                self._rate_limited += 1
            raise RateLimitedError(
                f"rate limit exceeded for request family {family!r} "
                f"({self.rate_limit}/s, burst {self.rate_burst})"
            )

    def expiry_for(self, request, now: float) -> float | None:
        """The absolute expiry for *request* submitted at *now* (or None).

        The request's own ``deadline`` (relative seconds) wins over the
        controller's ``default_deadline``; ``None`` means never expires.
        """
        deadline = (
            request.deadline if request.deadline is not None
            else self.default_deadline
        )
        return None if deadline is None else now + deadline

    # ------------------------------------------------------------------
    # Counters (the scheduler reports queue events back to the policy)
    # ------------------------------------------------------------------
    def count_rejected(self) -> None:
        """Record one queue-full rejection (``"reject"`` policy)."""
        with self._lock:
            self._rejected += 1

    def count_shed(self) -> None:
        """Record one shed-oldest eviction (``"shed_oldest"`` policy)."""
        with self._lock:
            self._shed += 1

    def stats(self) -> dict:
        """Configured limits plus rejection/shed/rate-limit counters."""
        with self._lock:
            return {
                "queue_limit": self.queue_limit,
                "shed_policy": self.shed_policy,
                "rate_limit": self.rate_limit,
                "default_deadline": self.default_deadline,
                "rejected": self._rejected,
                "shed": self._shed,
                "rate_limited": self._rate_limited,
            }

    def observe(self, registry) -> None:
        """Expose the admission counters on *registry* as callback gauges.

        Called by the scheduler when it adopts this policy; the gauges read
        the live counters only at scrape time, so admission decisions carry
        no extra bookkeeping.
        """
        family = registry.gauge(
            "repro_admission_events",
            "Admission-control decisions (rejected, shed, rate_limited).",
            labels=("decision",),
        )
        family.labels(decision="rejected").set_function(
            lambda: self._rejected
        )
        family.labels(decision="shed").set_function(lambda: self._shed)
        family.labels(decision="rate_limited").set_function(
            lambda: self._rate_limited
        )

    def __repr__(self) -> str:
        return (
            f"AdmissionControl(queue_limit={self.queue_limit}, "
            f"shed_policy={self.shed_policy!r}, rate_limit={self.rate_limit})"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff retry policy for transient execution failures.

    ``max_retries`` is the per-request retry budget (0 — the default —
    disables retries entirely, so the policy costs nothing when off).
    Delays grow as ``base_delay · 2^attempt``, capped at ``max_delay``,
    with up to ``jitter`` (a fraction) of multiplicative random jitter so
    synchronized retries decorrelate.  Only errors matching ``retry_on``
    (default :class:`~repro.exceptions.TransientError`) are retried —
    semantic errors like an unknown fact fail immediately.
    """

    max_retries: int = 0
    base_delay: float = 0.05
    max_delay: float = 1.0
    jitter: float = 0.5
    retry_on: tuple = (TransientError,)

    def retriable(self, error: BaseException) -> bool:
        """Whether *error* is in the retried class of failures."""
        return isinstance(error, self.retry_on)

    def delay_for(self, attempt: int, rng=None) -> float:
        """Backoff before retry number ``attempt + 1`` (seconds, jittered)."""
        delay = min(self.max_delay, self.base_delay * (2 ** attempt))
        if self.jitter and rng is not None:
            delay *= 1.0 + self.jitter * rng.random()
        return delay


class _BreakerState:
    """Per-session breaker bookkeeping (holds the session ref alive)."""

    __slots__ = ("session", "status", "failures", "since")

    def __init__(self, session):
        self.session = session
        self.status = "closed"
        self.failures = 0
        self.since = 0.0


class CircuitBreaker:
    """Per-session circuit breaker with tier degradation before opening.

    State machine (per session, advanced by the scheduler's execution
    outcomes):

    * **closed** — healthy.  ``failure_threshold`` consecutive kernel
      failures *trip* the breaker: the session's kernel tier is degraded to
      ``degrade_to`` (array → batched; results stay bit-identical because
      the tiers agree) and the state moves to *degraded*.
    * **degraded** — serving on the fallback tier.  A success after
      ``cooldown`` seconds restores the session's configured tier and
      closes the breaker; ``failure_threshold`` further failures *open* it.
    * **open** — requests are rejected fast with
      :class:`~repro.exceptions.CircuitOpenError` (at submit and at claim
      time).  After ``cooldown`` seconds the next probe is allowed through
      on the degraded tier (half-open).

    Only kernel-shaped failures count: :class:`~repro.exceptions.TransientError`
    and non-:class:`~repro.exceptions.ReproError` escapes.  Semantic
    request errors (unknown fact, missing data source) are neutral.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        cooldown: float = 1.0,
        degrade_to: str = "batched",
    ):
        if failure_threshold < 1:
            raise ReproError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown < 0:
            raise ReproError(f"cooldown must be >= 0, got {cooldown}")
        self.failure_threshold = failure_threshold
        self.cooldown = cooldown
        self.degrade_to = degrade_to
        self._lock = threading.Lock()
        self._states: dict[int, _BreakerState] = {}
        self._trips = 0
        self._recoveries = 0
        self._open_rejections = 0

    def _state(self, session) -> _BreakerState:
        state = self._states.get(id(session))
        if state is None:
            state = _BreakerState(session)
            self._states[id(session)] = state
        return state

    @staticmethod
    def _counts_as_failure(error: BaseException) -> bool:
        if isinstance(error, TransientError):
            return True
        return not isinstance(error, ReproError)

    def _can_degrade(self, session) -> bool:
        """Whether the session's *effective* tier has a lower rung left."""
        mode = session.kernel_mode
        return mode in _DEGRADABLE_MODES and mode != self.degrade_to

    def _degrade(self, session) -> None:
        if not self._can_degrade(session):
            return
        mode = session.kernel_mode
        if mode == "sharded" and self.degrade_to not in ("sharded", "array"):
            # First rung of the sharded chain: drop the process pool but
            # keep the columnar layout; a further trip reaches degrade_to.
            session.degrade_kernel_mode("array")
        else:
            session.degrade_kernel_mode(self.degrade_to)

    # ------------------------------------------------------------------
    # Scheduler integration points
    # ------------------------------------------------------------------
    def reject(self, session, now: float) -> bool:
        """Whether *session*'s circuit is open at *now* (counts rejections).

        An open circuit past its cool-down transitions to *degraded*
        (half-open: the next request probes the fallback tier) and admits.
        """
        with self._lock:
            state = self._states.get(id(session))
            if state is None or state.status != "open":
                return False
            if now - state.since >= self.cooldown:
                state.status = "degraded"
                state.failures = 0
                state.since = now
                return False
            self._open_rejections += 1
            return True

    def record_failure(self, session, error: BaseException, now: float) -> None:
        """Advance the state machine on one failed execution attempt."""
        if not self._counts_as_failure(error):
            return
        with self._lock:
            state = self._state(session)
            state.failures += 1
            if state.failures < self.failure_threshold:
                return
            if state.status == "closed":
                self._degrade(session)
                state.status = "degraded"
                self._trips += 1
            elif state.status == "degraded":
                if self._can_degrade(session):
                    # The sharded chain has a rung left (array → batched):
                    # degrade again and keep probing before opening.
                    self._degrade(session)
                    self._trips += 1
                else:
                    state.status = "open"
            state.failures = 0
            state.since = now

    def record_success(self, session, now: float) -> None:
        """Advance the state machine on one successful execution."""
        with self._lock:
            state = self._states.get(id(session))
            if state is None:
                return
            if state.status == "closed":
                state.failures = 0
            elif state.status == "degraded":
                if now - state.since >= self.cooldown:
                    session.restore_kernel_mode()
                    state.status = "closed"
                    state.failures = 0
                    self._recoveries += 1
            else:  # an in-flight attempt finished after the circuit opened
                state.status = "degraded"
                state.failures = 0
                state.since = now

    def stats(self) -> dict:
        """Trips/recoveries/rejections plus current per-state counts."""
        with self._lock:
            statuses = [state.status for state in self._states.values()]
            return {
                "failure_threshold": self.failure_threshold,
                "cooldown": self.cooldown,
                "degrade_to": self.degrade_to,
                "trips": self._trips,
                "recoveries": self._recoveries,
                "open_rejections": self._open_rejections,
                "degraded": statuses.count("degraded"),
                "open": statuses.count("open"),
            }

    def _count_status(self, status: str) -> int:
        with self._lock:
            return sum(
                1 for state in self._states.values()
                if state.status == status
            )

    def observe(self, registry) -> None:
        """Expose breaker state and counters on *registry* as callback gauges.

        ``repro_breaker_sessions{state=…}`` reports how many sessions are
        currently degraded or open — the ``/healthz`` signal — and the
        trip/recovery/rejection totals ride along for dashboards.
        """
        states = registry.gauge(
            "repro_breaker_sessions",
            "Sessions currently in each breaker state.",
            labels=("state",),
        )
        states.labels(state="degraded").set_function(
            lambda: self._count_status("degraded")
        )
        states.labels(state="open").set_function(
            lambda: self._count_status("open")
        )
        events = registry.gauge(
            "repro_breaker_events",
            "Breaker lifecycle totals (trips, recoveries, open_rejections).",
            labels=("event",),
        )
        events.labels(event="trips").set_function(lambda: self._trips)
        events.labels(event="recoveries").set_function(
            lambda: self._recoveries
        )
        events.labels(event="open_rejections").set_function(
            lambda: self._open_rejections
        )

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(failure_threshold={self.failure_threshold}, "
            f"cooldown={self.cooldown}, degrade_to={self.degrade_to!r})"
        )
