"""SessionPool: shared annotated state for sessions serving the same data.

The 2-monoid framework's serving advantage is that every problem family is
answered from state derived off **one** database: the ψ-annotated
:class:`~repro.db.annotated.KDatabase` per family, its cached columnar
views, and the Shapley kernel's packed big-int operands.  The pool realizes
that sharing across session handles: every
:meth:`SessionPool.session` call for the same ``(query, data sources)``
returns an :class:`~repro.engine.session.EngineSession` wired (via
:meth:`~repro.engine.session.EngineSession.share_state_from`) to one shared
cache bundle, so the first request to build an annotation serves every
later session of that key.

Invalidation: user-supplied pre-annotated databases (``annotated=…``) are
the one mutable data source a session binds.  The pool registers a
version-keyed invalidation hook
(:meth:`~repro.db.annotated.KDatabase.add_invalidation_hook`) on each, so
any mutation eagerly drops the dependent memoized results — on top of the
sessions' own lazy fingerprint checks.

>>> from fractions import Fraction
>>> from repro import Fact, ProbabilisticDatabase, parse_query
>>> from repro.serve import SessionPool
>>> query = parse_query("Q() :- R(X), S(X)")
>>> pdb = ProbabilisticDatabase({
...     Fact("R", (1,)): Fraction(1, 2),
...     Fact("S", (1,)): Fraction(1, 2),
... })
>>> with SessionPool() as pool:
...     first = pool.session(query, probabilistic=pdb)
...     second = pool.session(query, probabilistic=pdb)  # same sources
...     _ = first.pqe(exact=True)
...     builds = second.stats()["annotation_builds"]     # shared state
>>> builds
1
"""

from __future__ import annotations

import threading

from repro.db.annotated import KDatabase
from repro.engine import Engine
from repro.engine.session import EngineSession
from repro.query.bcq import BCQ


class _PoolEntry:
    """One shared-state bundle: the canonical session plus bookkeeping."""

    __slots__ = ("canonical", "data", "sessions", "hooks")

    def __init__(self, canonical: EngineSession, data: dict):
        self.canonical = canonical
        self.data = data  # strong refs keep the id()-based key stable
        self.sessions = 1
        self.hooks: list[tuple[KDatabase, object]] = []


class SessionPool:
    """Pools :class:`EngineSession` state per ``(query, data sources)`` key.

    Data sources are keyed by **object identity**: two sessions share state
    exactly when they were opened over the same source objects (the paper's
    serving story — many requests against one database).  The pool holds
    strong references to pooled sources, so identity keys stay stable for
    the pool's lifetime.

    Thread-safe: sessions may be requested from any thread, and the handed
    out sessions are themselves safe to share across worker threads.
    """

    def __init__(self, engine: Engine | None = None):
        self.engine = engine or Engine()
        self._lock = threading.Lock()
        self._entries: dict[tuple, _PoolEntry] = {}

    def _key(self, query: BCQ, data: dict) -> tuple:
        return (
            query,
            tuple(sorted(
                (name, id(source)) for name, source in data.items()
                if source is not None
            )),
        )

    def session(self, query: BCQ, **data) -> EngineSession:
        """A session bound to *query* and *data*, sharing pooled state.

        The first call for a key opens the canonical session; every later
        call opens a fresh handle and adopts the canonical state, so all of
        them serve one set of annotated databases, monoids, plans and
        memoized results.
        """
        key = self._key(query, data)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                canonical = self.engine.open(query, **data)
                entry = _PoolEntry(canonical, dict(data))
                self._install_hooks(entry)
                self._entries[key] = entry
                return canonical
            entry.sessions += 1
            session = self.engine.open(query, **entry.data)
            session.share_state_from(entry.canonical)
            return session

    def _install_hooks(self, entry: _PoolEntry) -> None:
        """Version-keyed eviction: mutations of a bound pre-annotated
        database eagerly invalidate the dependent memoized results."""
        for source in entry.data.values():
            if isinstance(source, KDatabase):
                session = entry.canonical

                def hook(_db, _name, _version, session=session):
                    session.invalidate()

                source.add_invalidation_hook(hook)
                entry.hooks.append((source, hook))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop the memoized results of every pooled session."""
        with self._lock:
            entries = list(self._entries.values())
        for entry in entries:
            entry.canonical.invalidate()

    def close(self) -> None:
        """Unhook every source and drop all pooled state."""
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
        for entry in entries:
            for source, hook in entry.hooks:
                source.remove_invalidation_hook(hook)
            entry.hooks.clear()

    def __enter__(self) -> "SessionPool":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Pool shape: pooled keys, handed-out sessions, shared-state sizes."""
        with self._lock:
            entries = dict(self._entries)
        return {
            "entries": len(entries),
            "sessions": sum(entry.sessions for entry in entries.values()),
            "keys": [
                {
                    "query": str(key[0]),
                    "sources": [name for name, _ in key[1]],
                    "sessions": entry.sessions,
                    "annotated_databases": len(entry.canonical._annotated),
                    "memo_entries": len(entry.canonical._results),
                    "memo_evictions": (
                        entry.canonical._results.evictions
                        + entry.canonical._sat_pairs.evictions
                    ),
                }
                for key, entry in entries.items()
            ],
        }

    def __repr__(self) -> str:
        with self._lock:
            count = len(self._entries)
        return f"SessionPool(entries={count}, engine={self.engine!r})"
