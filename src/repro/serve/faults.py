"""Deterministic fault injection for chaos-testing the serving stack.

A :class:`FaultInjector` is threaded through
:class:`~repro.serve.scheduler.Scheduler` (and
:class:`~repro.serve.server.Server`) and fires at three seeded injection
points, plus a skewed clock:

* **kernel raises** — :meth:`FaultInjector.before_attempt` raises
  :class:`~repro.exceptions.TransientError` with probability
  ``kernel_failure_rate`` before each execution attempt (the retry loop's
  unit), capped by ``max_kernel_failures`` so a test can inject exactly N
  failures and then let retries succeed deterministically;
* **slow executions** — the same hook sleeps ``slow_seconds`` with
  probability ``slow_rate``;
* **worker deaths** — :meth:`FaultInjector.on_claim` raises
  :class:`WorkerKilled` (a ``BaseException``, so it escapes the per-flight
  error handling exactly like a real bug would) with probability
  ``worker_death_rate``, capped by ``max_worker_deaths``, exercising the
  scheduler's supervision/respawn/re-queue path;
* **shard-worker deaths** — :meth:`FaultInjector.on_shard_dispatch`
  returns ``True`` with probability ``shard_death_rate`` (capped by
  ``max_shard_deaths``), telling the sharded tier
  (:mod:`repro.core.sharded`) to SIGKILL one live process of its pool
  before dispatching — exercising the pool-rebuild/resubmit path that
  keeps every submitted future resolving bit-identically;
* **clock skew** — :meth:`FaultInjector.clock` is ``time.monotonic() +
  clock_skew``; the scheduler uses it for every deadline and cool-down
  decision when an injector is installed.

All randomness comes from one ``random.Random(seed)``, so a single-worker
chaos run is fully reproducible; multi-worker runs are reproducible up to
thread interleaving, which is why the chaos suite asserts *invariants*
(no future stranded, surviving answers bit-identical) rather than exact
event sequences.

>>> from repro.serve.faults import FaultInjector, FaultPlan
>>> injector = FaultInjector(
...     FaultPlan(seed=7, kernel_failure_rate=1.0, max_kernel_failures=1)
... )
>>> try:
...     injector.before_attempt()
... except Exception as error:
...     print(type(error).__name__)
TransientError
>>> injector.before_attempt()   # cap reached: no further injection
>>> injector.stats()["kernel_failures"]
1
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from repro.exceptions import ReproError, TransientError


class WorkerKilled(BaseException):
    """An injected worker death (deliberately **not** a :class:`ReproError`).

    Subclasses ``BaseException`` so it escapes the scheduler's per-flight
    ``except`` handling the same way an escaped bug or a hard thread kill
    would, triggering worker supervision instead of per-request error
    reporting.
    """


@dataclass(frozen=True)
class FaultPlan:
    """The seeded chaos recipe a :class:`FaultInjector` executes.

    Rates are probabilities in ``[0, 1]`` drawn per injection point;
    ``max_*`` caps bound the total number of injections (``None`` =
    unbounded), which is how tests pin exact failure counts.
    """

    seed: int = 0
    kernel_failure_rate: float = 0.0
    max_kernel_failures: int | None = None
    slow_rate: float = 0.0
    slow_seconds: float = 0.0
    worker_death_rate: float = 0.0
    max_worker_deaths: int | None = None
    shard_death_rate: float = 0.0
    max_shard_deaths: int | None = None
    clock_skew: float = 0.0

    def __post_init__(self) -> None:
        for name in (
            "kernel_failure_rate",
            "slow_rate",
            "worker_death_rate",
            "shard_death_rate",
        ):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise ReproError(f"{name} must be in [0, 1], got {rate}")
        if self.slow_seconds < 0:
            raise ReproError(
                f"slow_seconds must be >= 0, got {self.slow_seconds}"
            )


class FaultInjector:
    """Executes a :class:`FaultPlan` at the scheduler's injection points.

    Construct from a plan, or with the plan's fields as keywords::

        FaultInjector(seed=11, worker_death_rate=1.0, max_worker_deaths=2)

    Thread-safe: draws and counters are serialized on one lock, so the
    seeded stream is consumed in a single global order.
    """

    def __init__(self, plan: FaultPlan | None = None, **plan_fields):
        if plan is not None and plan_fields:
            raise ReproError("pass either a FaultPlan or its fields, not both")
        self.plan = plan if plan is not None else FaultPlan(**plan_fields)
        self._rng = random.Random(self.plan.seed)
        self._lock = threading.Lock()
        self._kernel_failures = 0
        self._worker_deaths = 0
        self._shard_deaths = 0
        self._slowdowns = 0

    # ------------------------------------------------------------------
    # Injection points (called by the scheduler)
    # ------------------------------------------------------------------
    def clock(self) -> float:
        """The injected monotonic clock: real time plus the plan's skew."""
        return time.monotonic() + self.plan.clock_skew

    def retry_rng(self) -> random.Random:
        """A derived RNG for retry jitter (seeded, independent stream)."""
        return random.Random(self.plan.seed ^ 0x5EED)

    def before_attempt(self) -> None:
        """Fire the slow-execution and kernel-raise points for one attempt."""
        plan = self.plan
        sleep_for = 0.0
        with self._lock:
            if plan.slow_rate and self._rng.random() < plan.slow_rate:
                self._slowdowns += 1
                sleep_for = plan.slow_seconds
            fail = (
                plan.kernel_failure_rate
                and (
                    plan.max_kernel_failures is None
                    or self._kernel_failures < plan.max_kernel_failures
                )
                and self._rng.random() < plan.kernel_failure_rate
            )
            if fail:
                self._kernel_failures += 1
                count = self._kernel_failures
        if sleep_for:
            time.sleep(sleep_for)
        if fail:
            raise TransientError(f"injected kernel failure #{count}")

    def on_shard_dispatch(self) -> bool:
        """The shard-worker death point: ``True`` = SIGKILL a pool process.

        Consulted by :mod:`repro.core.sharded` before each sharded
        dispatch (the scheduler installs this hook when an injector is
        given).  Unlike the thread-level :meth:`on_claim` this does not
        raise — the sharded runtime kills one *process* of its pool and
        must then survive the resulting ``BrokenProcessPool`` by
        rebuilding and resubmitting, so every future still resolves
        bit-identically.
        """
        plan = self.plan
        with self._lock:
            if not plan.shard_death_rate:
                return False
            if (
                plan.max_shard_deaths is not None
                and self._shard_deaths >= plan.max_shard_deaths
            ):
                return False
            if self._rng.random() >= plan.shard_death_rate:
                return False
            self._shard_deaths += 1
            return True

    def on_claim(self) -> None:
        """Fire the worker-death point for one claimed batch."""
        plan = self.plan
        with self._lock:
            if not plan.worker_death_rate:
                return
            if (
                plan.max_worker_deaths is not None
                and self._worker_deaths >= plan.max_worker_deaths
            ):
                return
            if self._rng.random() >= plan.worker_death_rate:
                return
            self._worker_deaths += 1
            count = self._worker_deaths
        raise WorkerKilled(f"injected worker death #{count}")

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Injection counts (kernel failures, worker deaths, slowdowns)."""
        with self._lock:
            return {
                "seed": self.plan.seed,
                "kernel_failures": self._kernel_failures,
                "worker_deaths": self._worker_deaths,
                "shard_deaths": self._shard_deaths,
                "slowdowns": self._slowdowns,
                "clock_skew": self.plan.clock_skew,
            }

    def __repr__(self) -> str:
        return f"FaultInjector({self.plan!r})"
