"""The concurrent serving subsystem (pooled sessions, scheduler, server).

Layers, bottom-up:

* :class:`~repro.serve.request.Request` — the hashable unit of work: an
  evaluation family plus canonical parameters;
* :class:`~repro.serve.pool.SessionPool` — shares one annotated
  :class:`~repro.db.annotated.KDatabase` bundle (columnar views, packed
  Shapley kernel state, result memo) across every
  :class:`~repro.engine.session.EngineSession` bound to the same
  ``(query, data sources)``, with version-keyed invalidation hooks;
* :class:`~repro.serve.scheduler.Scheduler` — a thread-safe queue plus
  worker threads, coalescing duplicate in-flight requests (single-flight)
  and batching per-fact Shapley/Banzhaf floods into whole-instance sweeps;
* :class:`~repro.serve.server.Server` — the futures front-end
  (``submit``/``map``/``close``) binding one serving target, backing the
  ``repro serve`` CLI and the ``serve`` bench scenario.

Cross-cutting robustness (all default-off; see
:mod:`repro.serve.admission` and :mod:`repro.serve.faults`):
:class:`~repro.serve.admission.AdmissionControl` bounds the queue, rate
limits per family and applies deadlines (enforced at claim time with
:class:`~repro.exceptions.DeadlineExceeded`);
:class:`~repro.serve.admission.RetryPolicy` retries transient failures
with jittered exponential backoff;
:class:`~repro.serve.admission.CircuitBreaker` degrades a failing
session's kernel tier (bit-identically) before failing fast; the
scheduler supervises its workers, respawning dead ones and re-queueing
their claimed requests; and :class:`~repro.serve.faults.FaultInjector`
is the seeded chaos harness that proves all of the above in
``tests/test_faults.py``.

Every request is executed through the session's memoizing
:meth:`~repro.engine.session.EngineSession.request` entry point, so all
answers are bit-identical to serial one-shot evaluation by construction.

The stack is network-reachable through
:class:`~repro.serve.http.HttpFrontend` (stdlib asyncio; ``repro serve
--http PORT``) and observable end to end through :mod:`repro.obs`:
per-family request counters, latency histograms and queue/breaker gauges
compose into one Prometheus exposition at ``GET /metrics``, and every
request carries a :class:`repro.obs.Trace` of its lifecycle.
"""

from repro.serve.admission import (
    AdmissionControl,
    CircuitBreaker,
    RetryPolicy,
    TokenBucket,
)
from repro.serve.faults import FaultInjector, FaultPlan, WorkerKilled
from repro.serve.http import HttpFrontend
from repro.serve.io import load_request_stream, request_from_dict
from repro.serve.pool import SessionPool
from repro.serve.request import Request
from repro.serve.scheduler import Scheduler
from repro.serve.server import Server, serve_requests

__all__ = [
    "AdmissionControl",
    "CircuitBreaker",
    "FaultInjector",
    "FaultPlan",
    "HttpFrontend",
    "Request",
    "RetryPolicy",
    "Scheduler",
    "Server",
    "SessionPool",
    "TokenBucket",
    "WorkerKilled",
    "load_request_stream",
    "request_from_dict",
    "serve_requests",
]
