"""The concurrent serving subsystem (pooled sessions, scheduler, server).

Layers, bottom-up:

* :class:`~repro.serve.request.Request` — the hashable unit of work: an
  evaluation family plus canonical parameters;
* :class:`~repro.serve.pool.SessionPool` — shares one annotated
  :class:`~repro.db.annotated.KDatabase` bundle (columnar views, packed
  Shapley kernel state, result memo) across every
  :class:`~repro.engine.session.EngineSession` bound to the same
  ``(query, data sources)``, with version-keyed invalidation hooks;
* :class:`~repro.serve.scheduler.Scheduler` — a thread-safe queue plus
  worker threads, coalescing duplicate in-flight requests (single-flight)
  and batching per-fact Shapley/Banzhaf floods into whole-instance sweeps;
* :class:`~repro.serve.server.Server` — the futures front-end
  (``submit``/``map``/``close``) binding one serving target, backing the
  ``repro serve`` CLI and the ``serve`` bench scenario.

Every request is executed through the session's memoizing
:meth:`~repro.engine.session.EngineSession.request` entry point, so all
answers are bit-identical to serial one-shot evaluation by construction.
"""

from repro.serve.io import load_request_stream, request_from_dict
from repro.serve.pool import SessionPool
from repro.serve.request import Request
from repro.serve.scheduler import Scheduler
from repro.serve.server import Server, serve_requests

__all__ = [
    "Request",
    "Scheduler",
    "Server",
    "SessionPool",
    "load_request_stream",
    "request_from_dict",
    "serve_requests",
]
