"""Server: the futures front-end over one pooled session and a scheduler.

The ergonomic entry point of the serving subsystem::

    from repro import Engine, Request, Server

    with Server(query, probabilistic=pdb, workers=4) as server:
        future = server.submit(Request.make("pqe"))
        answers = server.map([Request.make("pqe"), Request.make("resilience")])

Every server binds **one** ``(query, data sources)`` target through a
:class:`~repro.serve.pool.SessionPool` (pass ``pool=`` to share annotated
state between several servers over the same sources) and pushes its
requests through a :class:`~repro.serve.scheduler.Scheduler`, so duplicate
in-flight requests execute once, per-fact Shapley/Banzhaf floods collapse
into sweeps, and repeated requests are served from the session memo.

>>> from fractions import Fraction
>>> from repro import Fact, ProbabilisticDatabase, Request, Server, parse_query
>>> query = parse_query("Q() :- R(X), S(X)")
>>> pdb = ProbabilisticDatabase({
...     Fact("R", (1,)): Fraction(1, 2),
...     Fact("S", (1,)): Fraction(1, 2),
... })
>>> with Server(query, probabilistic=pdb, workers=2) as server:
...     answers = server.map([
...         Request.make("pqe", exact=True),
...         Request.make("expected_count", exact=True),
...     ])
>>> answers
[Fraction(1, 4), Fraction(1, 4)]
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import Iterable, Sequence

from repro.engine import Engine
from repro.exceptions import ReproError
from repro.query.bcq import BCQ
from repro.serve.admission import AdmissionControl, CircuitBreaker, RetryPolicy
from repro.serve.faults import FaultInjector
from repro.serve.pool import SessionPool
from repro.serve.request import Request
from repro.serve.scheduler import Scheduler


class Server:
    """Concurrent request serving for one query over one set of data sources.

    Parameters
    ----------
    query:
        The SJF-BCQ every request evaluates.
    engine:
        Engine configuration (policy, kernel mode); mutually exclusive with
        *pool*, which already carries one.
    pool:
        An existing :class:`SessionPool` to share annotated state with other
        servers; the server then does **not** close the pool on exit.
    workers:
        Scheduler worker-thread count.
    shard_workers:
        Optional process-pool size for the sharded tier (engines opened
        with ``kernel_mode="sharded"``); validated by the same shared
        helper as *workers* and forwarded to the scheduler.
    admission:
        :class:`~repro.serve.admission.AdmissionControl` — bounded queue,
        per-family rate limits and default deadline.  Defaults to
        no-limits admission (the pre-robustness behavior).
    retry:
        :class:`~repro.serve.admission.RetryPolicy` for transient
        execution failures.  Defaults to no retries.
    breaker:
        Optional :class:`~repro.serve.admission.CircuitBreaker` degrading
        (then failing fast) sessions with repeated kernel failures.
    faults:
        Optional :class:`~repro.serve.faults.FaultInjector` — the seeded
        chaos harness (tests only).
    event_log:
        Optional :class:`repro.obs.EventLog` receiving one JSON line per
        resolved request (forwarded to the scheduler).
    **data:
        The session data sources (``database=``, ``probabilistic=``,
        ``exogenous=``/``endogenous=``, ``repair=``, ``annotated=`` — see
        :meth:`repro.engine.engine.Engine.open`).
    """

    def __init__(
        self,
        query: BCQ,
        *,
        engine: Engine | None = None,
        pool: SessionPool | None = None,
        workers: int = 4,
        shard_workers: int | None = None,
        admission: AdmissionControl | None = None,
        retry: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        faults: FaultInjector | None = None,
        event_log=None,
        **data,
    ):
        if pool is not None and engine is not None:
            raise ReproError(
                "pass either engine= or pool= (the pool carries its engine)"
            )
        self._owns_pool = pool is None
        self.pool = pool or SessionPool(engine)
        try:
            self.session = self.pool.session(query, **data)
            self.scheduler = Scheduler(
                workers=workers,
                admission=admission,
                retry=retry,
                breaker=breaker,
                faults=faults,
                shard_workers=shard_workers,
                event_log=event_log,
            )
        except BaseException:
            # A failed construction (bad workers, bad data sources) must
            # not leak invalidation hooks onto the caller's databases.
            if self._owns_pool:
                self.pool.close()
            raise

    # ------------------------------------------------------------------
    # Request entry points
    # ------------------------------------------------------------------
    def submit(self, request: Request) -> Future:
        """Enqueue one request; the future resolves to its answer."""
        return self.scheduler.submit(self.session, request)

    def map(self, requests: Iterable[Request]) -> list:
        """Submit *requests* and gather their answers in input order.

        Raises the first failing request's exception (after all submitted
        work has been enqueued), like ``concurrent.futures`` executors.
        """
        futures = [self.submit(request) for request in requests]
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # Lifecycle / observability
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Drain and stop the scheduler (and a server-owned pool)."""
        self.scheduler.close()
        if self._owns_pool:
            self.pool.close()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def stats(self) -> dict:
        """Scheduler counters plus the bound session's cache statistics."""
        return {
            "scheduler": self.scheduler.stats(),
            "session": self.session.stats(),
            "pool": self.pool.stats(),
        }

    def metrics_registries(self) -> list:
        """Every registry behind this server, for one composed exposition.

        Scheduler (requests, latency, queue, admission, breaker), session
        state (evaluations, memo, fusion) and the process-wide core-engine
        registry (tiers, sharded, fused, plan cache) — the HTTP front-end
        renders all of them into one ``/metrics`` page via
        :func:`repro.obs.render_prometheus`.
        """
        from repro.obs import global_registry

        return [
            self.scheduler.metrics_registry,
            self.session.metrics_registry,
            global_registry(),
        ]

    def render_metrics(self) -> str:
        """The composed Prometheus text exposition for this server."""
        from repro.obs import render_prometheus

        return render_prometheus(self.metrics_registries())

    def health(self) -> dict:
        """A liveness/readiness summary for ``GET /healthz``.

        ``ok`` is ``False`` only when the breaker holds sessions *open*
        (failing fast) — degraded sessions still answer, bit-identically,
        on the fallback tier.
        """
        scheduler = self.scheduler.stats()
        breaker = scheduler["breaker"]
        open_sessions = breaker["open"] if breaker else 0
        return {
            "ok": open_sessions == 0,
            "queued": scheduler["queued"],
            "pending": scheduler["pending"],
            "workers": scheduler["workers"],
            "breaker_open": open_sessions,
            "breaker_degraded": breaker["degraded"] if breaker else 0,
        }

    def __repr__(self) -> str:
        return (
            f"Server({self.session!r}, "
            f"workers={self.scheduler.workers})"
        )


def serve_requests(
    query: BCQ,
    requests: Sequence[Request],
    *,
    engine: Engine | None = None,
    workers: int = 4,
    **data,
) -> list:
    """One-call convenience: serve *requests* and return ordered answers."""
    with Server(query, engine=engine, workers=workers, **data) as server:
        return server.map(requests)
