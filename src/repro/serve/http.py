"""The asyncio HTTP/JSON front-end: queries, streaming, metrics, health.

A thin, stdlib-only network layer over :class:`repro.serve.server.Server`.
One :class:`HttpFrontend` owns one asyncio event loop on a daemon thread
(`asyncio.start_server`), so it drops onto the existing synchronous
serving stack — CLI, tests, examples — without restructuring anything:

* ``POST /v1/query`` — a JSON request body (one request object, or
  ``{"requests": [...]}`` with ``bindings`` sweeps) is decoded by the
  same :mod:`repro.serve.io` helpers as the CLI's stream files, submitted
  through the scheduler (admission control, coalescing, batching and the
  breaker all apply), and answered as one JSON document in input order;
* ``POST /v1/stream`` — same body, chunked NDJSON response: one line per
  result *in completion order*, so a slow request never blocks a fast
  one's answer;
* ``GET /metrics`` — the composed Prometheus text exposition
  (scheduler + session + process-wide core registries);
* ``GET /healthz`` — liveness/readiness JSON (queue depth, breaker
  state); 503 when the circuit breaker holds sessions open.

The bridge between the worlds is explicit: submissions run on the
default executor (``run_in_executor`` — scheduler locks never block the
event loop) and the scheduler's ``concurrent.futures`` futures become
awaitables via ``asyncio.wrap_future``.  The event loop therefore only
ever *waits*; all evaluation work stays on the scheduler's worker
threads and the sharded tier's processes.
"""

from __future__ import annotations

import asyncio
import json
import threading
from fractions import Fraction

from repro.db.fact import Fact
from repro.exceptions import ReproError, SchemaError
from repro.serve.io import requests_from_dict

#: Largest accepted request body (bytes): queries are small; streams of
#: bindings are bounded by admission control anyway.
MAX_BODY_BYTES = 8 * 1024 * 1024

#: Content-Type of the Prometheus text exposition format.
PROMETHEUS_CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def encode_value(value):
    """Make one evaluation answer JSON-representable, losslessly.

    Exact carriers keep their exactness as strings — ``Fraction`` becomes
    ``"1/4"``, infinities become ``"inf"`` — while plain ints, floats,
    bools and strings pass through.  Mappings with :class:`Fact` keys
    (Shapley/Banzhaf sweeps) become ``{str(fact): value}`` objects and
    tuples/lists encode element-wise.

    >>> encode_value(Fraction(1, 4))
    '1/4'
    >>> encode_value((1, 2.5))
    [1, 2.5]
    """
    if isinstance(value, Fraction):
        return str(value)
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            return str(value)
        return value
    if isinstance(value, (int, str)):
        return value
    if isinstance(value, dict):
        return {
            str(key) if isinstance(key, Fact) else key: encode_value(entry)
            for key, entry in value.items()
        }
    if isinstance(value, (list, tuple)):
        return [encode_value(entry) for entry in value]
    if hasattr(value, "true_counts"):  # packed #Sat vectors
        return [encode_value(count) for count in value.true_counts]
    return str(value)


def _error_payload(error: BaseException) -> dict:
    """The JSON shape of one failed request: error class plus message."""
    return {"type": type(error).__name__, "message": str(error)}


def decode_body(body: bytes) -> list:
    """Decode a ``/v1/query`` / ``/v1/stream`` body into Request objects.

    Accepts one request object (``{"family": ...}``) or a batch document
    (``{"requests": [...]}``); entries go through
    :func:`repro.serve.io.requests_from_dict`, so ``bindings`` sweeps and
    ``deadline_ms`` work exactly as in CLI stream files.  Raises
    :class:`~repro.exceptions.SchemaError` on malformed input.
    """
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SchemaError(f"request body is not valid JSON: {error}")
    if isinstance(payload, dict) and "requests" in payload:
        entries = payload["requests"]
        if not isinstance(entries, list) or not entries:
            raise SchemaError("'requests' must be a non-empty list")
    elif isinstance(payload, dict):
        entries = [payload]
    else:
        raise SchemaError(
            "body must be a request object or {'requests': [...]}"
        )
    requests = [
        request for entry in entries for request in requests_from_dict(entry)
    ]
    for request in requests:
        try:
            hash(request.signature)
        except TypeError:
            raise SchemaError(
                f"request parameters must be hashable values: {request}"
            )
    return requests


class HttpFrontend:
    """An asyncio HTTP server bound to one :class:`~repro.serve.server.Server`.

    Runs its event loop on a dedicated daemon thread, so synchronous
    callers use it like any other resource::

        frontend = HttpFrontend(server, port=0)   # 0 → ephemeral port
        frontend.start()
        ... curl http://127.0.0.1:{frontend.port}/metrics ...
        frontend.close()

    The frontend never owns the server: closing it stops the listener and
    the loop, nothing else.
    """

    def __init__(self, server, host: str = "127.0.0.1", port: int = 0):
        self.server = server
        self.host = host
        self.port = port  # rebound to the actual port after start()
        self._thread: threading.Thread | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop: asyncio.Event | None = None
        self._ready = threading.Event()
        self._startup_error: BaseException | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "HttpFrontend":
        """Bind the listener and serve until :meth:`close` (returns self).

        Blocks only until the socket is bound; raises the underlying
        ``OSError`` if the bind fails (port in use, bad host).
        """
        if self._thread is not None:
            raise ReproError("this HttpFrontend was already started")
        self._thread = threading.Thread(
            target=self._run_loop, name="repro-http", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ReproError("HTTP front-end failed to start within 30s")
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def close(self) -> None:
        """Stop the listener and join the loop thread (idempotent)."""
        loop, stop = self._loop, self._stop
        if loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # loop already gone
        if self._thread is not None:
            self._thread.join(timeout=10)

    def __enter__(self) -> "HttpFrontend":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    @property
    def url(self) -> str:
        """The base URL of the running front-end."""
        return f"http://{self.host}:{self.port}"

    def _run_loop(self) -> None:
        try:
            asyncio.run(self._serve_forever())
        except BaseException as error:
            self._startup_error = error
            self._ready.set()

    async def _serve_forever(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        listener = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = listener.sockets[0].getsockname()[1]
        self._ready.set()
        async with listener:
            await self._stop.wait()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle(self, reader, writer) -> None:
        try:
            method, path = await self._read_request_line(reader)
            if method is None:
                return
            headers = await self._read_headers(reader)
            body = b""
            length = int(headers.get("content-length", "0") or "0")
            if length > MAX_BODY_BYTES:
                await self._respond_json(
                    writer, 413, {"error": "request body too large"}
                )
                return
            if length:
                body = await reader.readexactly(length)
            await self._dispatch(writer, method, path, body)
        except (
            asyncio.IncompleteReadError, ConnectionError, ValueError
        ):
            pass  # malformed or dropped connection: nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, RuntimeError):
                pass

    @staticmethod
    async def _read_request_line(reader):
        line = await reader.readline()
        if not line.strip():
            return None, None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None, None
        return parts[0].upper(), parts[1]

    @staticmethod
    async def _read_headers(reader) -> dict:
        headers: dict = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                return headers
            name, _sep, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()

    async def _dispatch(self, writer, method: str, path: str, body: bytes):
        path = path.split("?", 1)[0]
        if method == "GET" and path == "/metrics":
            await self._respond(
                writer, 200, PROMETHEUS_CONTENT_TYPE,
                self.server.render_metrics().encode("utf-8"),
            )
        elif method == "GET" and path == "/healthz":
            health = self.server.health()
            await self._respond_json(
                writer, 200 if health["ok"] else 503, health
            )
        elif method == "POST" and path == "/v1/query":
            await self._guarded(self._handle_query, writer, body)
        elif method == "POST" and path == "/v1/stream":
            await self._guarded(self._handle_stream, writer, body)
        else:
            await self._respond_json(
                writer, 404, {"error": f"no route for {method} {path}"}
            )

    async def _guarded(self, handler, writer, body: bytes) -> None:
        """Run one POST handler; unexpected failures answer 500, not EOF."""
        try:
            await handler(writer, body)
        except Exception as error:  # headers may already be out: best effort
            try:
                await self._respond_json(
                    writer, 500, {"error": _error_payload(error)}
                )
            except (ConnectionError, RuntimeError):
                pass

    def _submit_all(self, requests):
        """Submit every request (on the executor); errors ride in-slot."""
        slots = []
        for request in requests:
            try:
                slots.append((request, self.server.submit(request), None))
            except ReproError as error:
                slots.append((request, None, error))
        return slots

    async def _handle_query(self, writer, body: bytes) -> None:
        try:
            requests = decode_body(body)
        except (SchemaError, ReproError) as error:
            await self._respond_json(
                writer, 400, {"error": _error_payload(error)}
            )
            return
        loop = asyncio.get_running_loop()
        slots = await loop.run_in_executor(None, self._submit_all, requests)
        results = []
        failed = 0
        for request, future, submit_error in slots:
            entry: dict = {"request": str(request)}
            error = submit_error
            if future is not None:
                try:
                    entry["value"] = encode_value(
                        await asyncio.wrap_future(future)
                    )
                    error = None
                except ReproError as exec_error:
                    error = exec_error
            if error is not None:
                failed += 1
                entry["error"] = _error_payload(error)
            results.append(entry)
        await self._respond_json(
            writer, 200, {"results": results, "failed": failed}
        )

    async def _handle_stream(self, writer, body: bytes) -> None:
        try:
            requests = decode_body(body)
        except (SchemaError, ReproError) as error:
            await self._respond_json(
                writer, 400, {"error": _error_payload(error)}
            )
            return
        loop = asyncio.get_running_loop()
        slots = await loop.run_in_executor(None, self._submit_all, requests)
        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )
        await writer.drain()

        async def finish(index, request, future, submit_error):
            entry: dict = {"index": index, "request": str(request)}
            error = submit_error
            if future is not None:
                try:
                    entry["value"] = encode_value(
                        await asyncio.wrap_future(future)
                    )
                    error = None
                except ReproError as exec_error:
                    error = exec_error
            if error is not None:
                entry["error"] = _error_payload(error)
            return entry

        tasks = [
            finish(index, request, future, submit_error)
            for index, (request, future, submit_error) in enumerate(slots)
        ]
        for completed in asyncio.as_completed(tasks):
            entry = await completed
            line = json.dumps(entry, sort_keys=True).encode("utf-8") + b"\n"
            writer.write(f"{len(line):x}\r\n".encode("latin-1"))
            writer.write(line + b"\r\n")
            await writer.drain()
        writer.write(b"0\r\n\r\n")
        await writer.drain()

    # ------------------------------------------------------------------
    # Response plumbing
    # ------------------------------------------------------------------
    _STATUS_TEXT = {
        200: "OK", 400: "Bad Request", 404: "Not Found",
        413: "Payload Too Large", 503: "Service Unavailable",
    }

    async def _respond(
        self, writer, status: int, content_type: str, payload: bytes
    ) -> None:
        reason = self._STATUS_TEXT.get(status, "OK")
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            "Connection: close\r\n\r\n"
        )
        writer.write(head.encode("latin-1") + payload)
        await writer.drain()

    async def _respond_json(self, writer, status: int, payload: dict) -> None:
        await self._respond(
            writer, status, "application/json",
            json.dumps(payload, sort_keys=True).encode("utf-8"),
        )

    def __repr__(self) -> str:
        return f"HttpFrontend({self.url})"
