"""Bag-Set Maximization (Definitions 4.1/4.2, Theorem 5.11).

Given ``(D, Dr, θ)``, maximize the bag-set value ``Q(D′)`` over all repairs
``D ⊆ D′ ⊆ D ∪ Dr`` adding at most ``θ`` facts.  For hierarchical queries the
unified algorithm instantiates the Definition 5.9 2-monoid of monotone
vectors with the ψ-annotation of Definition 5.10 (present facts ↦ 1 = all
ones, repair facts ↦ ★ = (0, 1, 1, ...)) and reads off entry ``θ`` of the
output vector.

Baselines:

* :func:`maximize_brute_force` — enumerate all ≤θ-subsets of ``Dr \\ D``
  (exponential; and the only sound option for non-hierarchical queries,
  which is the content of the Theorem 4.4 dichotomy);
* :func:`maximize_greedy` — add the single best fact θ times (a natural
  heuristic that experiment E5 shows is *not* optimal in general).
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.algebra.bagset import BagSetMonoid, BagSetVector
from repro.algebra.provenance import evaluate_tree
from repro.core.lineage import read_once_lineage
from repro.db.database import Database
from repro.db.evaluation import count_satisfying_assignments
from repro.db.fact import Fact
from repro.exceptions import ReproError
from repro.query.bcq import BCQ


@dataclass(frozen=True)
class BagSetInstance:
    """An input ``(D, Dr, θ)`` of the Bag-Set Maximization problem."""

    database: Database
    repair_database: Database
    budget: int

    def __post_init__(self) -> None:
        if self.budget < 0:
            raise ReproError("the repair budget θ must be a natural number")

    def addable_facts(self) -> tuple[Fact, ...]:
        """The facts of ``Dr`` not already in ``D`` (the real repair choices)."""
        return tuple(
            fact
            for fact in self.repair_database.facts()
            if fact not in self.database
        )

    def validate_against(self, query: BCQ) -> None:
        self.database.validate_against(query)
        self.repair_database.validate_against(query)


def annotation_psi(instance: BagSetInstance, monoid: BagSetMonoid):
    """The ψ of Definition 5.10 as a fact-annotation function.

    Facts of ``D`` get 1 (multiplicity 1 for free at every budget); facts of
    ``Dr \\ D`` get ★ (multiplicity 1 from budget 1 on); everything else
    implicitly gets 0.
    """
    present = frozenset(instance.database.facts())
    addable = frozenset(instance.addable_facts())

    def psi(fact: Fact) -> BagSetVector:
        if fact in present:
            return monoid.one
        if fact in addable:
            return monoid.star
        return monoid.zero

    return psi


def maximize_profile(
    query: BCQ,
    instance: BagSetInstance,
    vector_length: int | None = None,
    *,
    policy: str = "rule1_first",
    kernel_mode: str = "auto",
) -> BagSetVector:
    """The full budget profile: entry ``i`` = best value at repair cost ≤ i.

    Parameters
    ----------
    vector_length:
        Truncation length of the bag-set vectors; defaults to ``θ + 1``
        (sufficient by monotonicity and the cost bound of Theorem 5.11).
        Experiment E9 passes larger lengths to measure the truncation lever.
    policy:
        Elimination policy (``"min_support"`` uses relation statistics).
    kernel_mode:
        ``"auto"`` for batched kernels, ``"scalar"`` for the per-tuple
        baseline (benchmarking).
    """
    from repro.engine import Engine

    session = Engine(policy=policy, kernel_mode=kernel_mode).open(
        query,
        database=instance.database,
        repair=instance.repair_database,
    )
    return session.bagset_profile(instance.budget, vector_length=vector_length)


def maximize(query: BCQ, instance: BagSetInstance) -> int:
    """The answer to Bag-Set Maximization: ``q(θ)`` (Theorem 5.11)."""
    profile = maximize_profile(query, instance)
    return profile[min(instance.budget, len(profile) - 1)]


def decide(query: BCQ, instance: BagSetInstance, target: int) -> bool:
    """The decision version (Definition 4.2): is the optimum at least τ?"""
    return maximize(query, instance) >= target


def maximize_via_lineage(query: BCQ, instance: BagSetInstance) -> int:
    """Theorem 6.4 φ-route: evaluate the read-once lineage of ``D ∪ Dr``.

    Independent code path used for cross-validation in the tests.
    """
    instance.validate_against(query)
    monoid = BagSetMonoid(instance.budget + 1)
    psi = annotation_psi(instance, monoid)
    full = instance.database.union(instance.repair_database)
    tree = read_once_lineage(query, full)
    profile = evaluate_tree(tree, monoid, psi)
    return profile[instance.budget]


def optimal_repair(
    query: BCQ, instance: BagSetInstance
) -> tuple[int, frozenset[Fact]]:
    """An optimal repair *witness*: the value **and** a fact set achieving it.

    The plain 2-monoid run returns only the optimum value; downstream users
    of a repair system need the repair itself.  We run the same dynamic
    program over the read-once lineage (Lemma 6.3 guarantees disjoint
    supports, so budget splits across subtrees are independent), carrying a
    witness fact-set alongside every vector entry.

    Returns ``(value, added_facts)`` with ``len(added_facts) ≤ θ`` and
    ``Q(D ∪ added_facts) = value``.
    """
    from repro.algebra.provenance import NodeKind, ProvTree

    instance.validate_against(query)
    length = instance.budget + 1
    present = frozenset(instance.database.facts())
    addable = frozenset(instance.addable_facts())
    empty: frozenset[Fact] = frozenset()
    Entry = tuple[int, frozenset]

    def leaf_entries(fact: Fact) -> list[Entry]:
        if fact in present:
            return [(1, empty)] * length
        if fact in addable:
            if length == 1:
                return [(0, empty)]
            return [(0, empty)] + [(1, frozenset({fact}))] * (length - 1)
        return [(0, empty)] * length

    def combine(
        left: list[Entry], right: list[Entry], multiply: bool
    ) -> list[Entry]:
        out: list[Entry] = []
        for i in range(length):
            best: Entry | None = None
            for j in range(i + 1):
                lv, lw = left[j]
                rv, rw = right[i - j]
                value = lv * rv if multiply else lv + rv
                if best is None or value > best[0]:
                    best = (value, lw | rw)
            assert best is not None
            out.append(best)
        return out

    def solve(tree: ProvTree) -> list[Entry]:
        if tree.is_false:
            return [(0, empty)] * length
        if tree.is_true:
            return [(1, empty)] * length
        if tree.kind is NodeKind.LEAF:
            return leaf_entries(tree.symbol)
        entries = solve(tree.children[0])
        multiply = tree.kind is NodeKind.AND
        for child in tree.children[1:]:
            entries = combine(entries, solve(child), multiply)
        return entries

    full = instance.database.union(instance.repair_database)
    lineage = read_once_lineage(query, full)
    value, witness = solve(lineage)[instance.budget]
    return value, witness


# ----------------------------------------------------------------------
# Baselines
# ----------------------------------------------------------------------
def maximize_brute_force(query: BCQ, instance: BagSetInstance) -> int:
    """Exhaustive search over all repairs of cost ≤ θ (exponential baseline).

    This is also the generic solver for non-hierarchical queries, where no
    polynomial algorithm exists unless P = NP (Theorem 4.4).
    """
    instance.validate_against(query)
    addable = instance.addable_facts()
    best = count_satisfying_assignments(query, instance.database)
    max_size = min(instance.budget, len(addable))
    for size in range(1, max_size + 1):
        for chosen in combinations(addable, size):
            repaired = instance.database.with_facts(chosen)
            best = max(best, count_satisfying_assignments(query, repaired))
    return best


def maximize_greedy(query: BCQ, instance: BagSetInstance) -> int:
    """Greedy baseline: θ rounds of adding the single most valuable fact.

    Not optimal in general — conjunctive structure makes marginal gains
    non-submodular (a fact can be worthless until a partner fact arrives).
    Experiment E5 quantifies the gap against the exact algorithm.
    """
    instance.validate_against(query)
    current = instance.database
    remaining = list(instance.addable_facts())
    for _round in range(instance.budget):
        if not remaining:
            break
        scored = [
            (count_satisfying_assignments(query, current.with_facts([fact])), fact)
            for fact in remaining
        ]
        best_value, best_fact = max(scored, key=lambda pair: (pair[0], repr(pair[1])))
        current = current.with_facts([best_fact])
        remaining.remove(best_fact)
    return count_satisfying_assignments(query, current)
