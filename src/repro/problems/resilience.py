"""Resilience of hierarchical queries — a fourth instantiation (Question 2).

The resilience of a true query ``Q`` on a database ``D`` [Freire,
Gatterbauer, Immerman, Meliou; PVLDB 2015] is the minimum number of
*endogenous* facts whose deletion makes ``Q`` false (∞ when the exogenous
facts alone satisfy ``Q``).  The paper's intro notes resilience as the "dual"
of Bag-Set Maximization; its concluding Question 2 asks which further
problems the unifying algorithm captures.  This module shows resilience is
one of them: Algorithm 1 with the :class:`~repro.algebra.resilience.
ResilienceMonoid` and the annotation

    ψ(f) = 1 (= ∞)  if f is exogenous,
    ψ(f) = 1        if f is endogenous,
    ψ(f) = 0 (= 0)  otherwise

computes it in ``O(|D|)`` for hierarchical SJF-BCQs.  (This is consistent
with the literature: hierarchical queries are triad-free, hence on the
tractable side of the resilience dichotomy.)

A subset-enumeration brute force validates the instantiation exactly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import combinations

from repro.algebra.provenance import evaluate_tree
from repro.algebra.resilience import Cost, ResilienceMonoid
from repro.core.lineage import read_once_lineage
from repro.db.database import Database
from repro.db.evaluation import evaluates_true
from repro.db.fact import Fact
from repro.exceptions import ReproError
from repro.query.bcq import BCQ


@dataclass(frozen=True)
class ResilienceInstance:
    """A database split into undeletable and deletable parts."""

    exogenous: Database
    endogenous: Database

    def __post_init__(self) -> None:
        overlap = [
            fact for fact in self.endogenous.facts() if fact in self.exogenous
        ]
        if overlap:
            raise ReproError(
                f"facts cannot be both exogenous and endogenous: {overlap[:3]}"
            )

    @classmethod
    def fully_endogenous(cls, database: Database) -> "ResilienceInstance":
        """The classical setting: every fact may be deleted."""
        return cls(exogenous=Database(), endogenous=database)

    def full_database(self) -> Database:
        return self.exogenous.union(self.endogenous)

    def validate_against(self, query: BCQ) -> None:
        self.exogenous.validate_against(query)
        self.endogenous.validate_against(query)


def annotation_psi(instance: ResilienceInstance, monoid: ResilienceMonoid):
    """ψ: exogenous ↦ ∞ (= 1), endogenous ↦ 1, absent ↦ 0 (= 0)."""
    exogenous = frozenset(instance.exogenous.facts())
    endogenous = frozenset(instance.endogenous.facts())

    def psi(fact: Fact) -> Cost:
        if fact in exogenous:
            return monoid.one
        if fact in endogenous:
            return monoid.unit_cost
        return monoid.zero

    return psi


def resilience(query: BCQ, instance: ResilienceInstance) -> Cost:
    """Resilience via Algorithm 1 over the resilience 2-monoid.

    Returns 0 when the query is already false, ``math.inf`` when it cannot
    be falsified by deleting endogenous facts, and the minimum deletion count
    otherwise.  Hierarchical queries only.
    """
    from repro.engine import Engine

    session = Engine().open(
        query, exogenous=instance.exogenous, endogenous=instance.endogenous
    )
    return session.resilience()


def resilience_of_database(query: BCQ, database: Database) -> Cost:
    """Classical resilience: every fact is deletable."""
    return resilience(query, ResilienceInstance.fully_endogenous(database))


def resilience_via_lineage(query: BCQ, instance: ResilienceInstance) -> Cost:
    """Theorem 6.4 φ-route: evaluate the read-once lineage (cross-check)."""
    instance.validate_against(query)
    monoid = ResilienceMonoid()
    psi = annotation_psi(instance, monoid)
    tree = read_once_lineage(query, instance.full_database())
    return evaluate_tree(tree, monoid, psi)


def resilience_brute_force(query: BCQ, instance: ResilienceInstance) -> Cost:
    """Subset enumeration by increasing deletion size (exponential baseline)."""
    instance.validate_against(query)
    full = instance.full_database()
    if not evaluates_true(query, full):
        return 0
    endogenous = list(instance.endogenous.facts())
    for size in range(1, len(endogenous) + 1):
        for removed in combinations(endogenous, size):
            if not evaluates_true(query, full.without_facts(removed)):
                return size
    return math.inf


def contingency_set(
    query: BCQ, instance: ResilienceInstance
) -> frozenset[Fact] | None:
    """An optimal deletion set (a minimum *contingency set*), or None if ∞.

    Greedy extraction on top of the exact resilience oracle: a fact belongs
    to some optimal contingency set iff deleting it lowers the remaining
    resilience by one.  Runs |Dn| · O(resilience) in the worst case.
    """
    target = resilience(query, instance)
    if target == 0:
        return frozenset()
    if math.isinf(target):
        return None
    chosen: list[Fact] = []
    current = instance
    remaining = target
    for fact in list(instance.endogenous.facts()):
        # Deleting `fact` outright: does the rest falsify one deletion cheaper?
        candidate = ResilienceInstance(
            exogenous=current.exogenous,
            endogenous=current.endogenous.without_facts([fact]),
        )
        if resilience(query, candidate) <= remaining - 1:
            chosen.append(fact)
            current = candidate
            remaining -= 1
            if remaining == 0:
                break
    if remaining != 0:
        raise ReproError("contingency extraction failed to reach the optimum")
    return frozenset(chosen)
