"""Expected answer count over a tuple-independent probabilistic database.

``E[Q(D)]`` — the expected number of satisfying assignments under possible-
world semantics — decomposes by linearity of expectation into a sum over
potential assignments of the product of their facts' probabilities.  That is
exactly evaluation in the (distributive!) real semiring ``(R≥0, +, ×)``
with probability annotations.

This module exists as the library's running contrast to the paper's point:
swap the 2-monoid from Definition 5.7 (``⊕ = disjoint-or``) to the real
semiring (``⊕ = +``) and the same Algorithm 1 run computes the *expectation*
instead of the *probability* — and because the semiring distributes, the
expectation is tractable even for non-hierarchical acyclic queries, while
the probability is #P-hard for them.
"""

from __future__ import annotations

from fractions import Fraction

from repro.algebra.real import Real
from repro.db.evaluation import count_satisfying_assignments, satisfying_assignments
from repro.problems.possible_worlds import ProbabilisticDatabase
from repro.query.bcq import BCQ


def expected_answer_count(
    query: BCQ, database: ProbabilisticDatabase, exact: bool = False
) -> Real:
    """``E[Q(D)]`` via Algorithm 1 over the real semiring (hierarchical Q)."""
    from repro.engine import Engine

    session = Engine().open(query, probabilistic=database)
    return session.expected_count(exact=exact)


def expected_answer_count_direct(
    query: BCQ, database: ProbabilisticDatabase, exact: bool = False
) -> Real:
    """``E[Q(D)]`` by summing over potential assignments (any SJF-BCQ).

    Works for arbitrary (even non-hierarchical) queries; used both as the
    cross-check baseline and as the evaluator in the semiring-vs-2-monoid
    demonstrations.
    """
    source = database.as_exact() if exact else database
    support = source.support_database()
    total: Real = Fraction(0) if exact else 0.0
    for assignment in satisfying_assignments(query, support):
        product: Real = Fraction(1) if exact else 1.0
        for atom in query.atoms:
            values = tuple(assignment[v] for v in atom.variables)
            from repro.db.fact import Fact

            product *= source.probability(Fact(atom.relation, values))
        total += product
    return total


def expected_answer_count_brute_force(
    query: BCQ, database: ProbabilisticDatabase, exact: bool = False
) -> Real:
    """``E[Q(D)]`` by full possible-world enumeration (exponential baseline)."""
    source = database.as_exact() if exact else database
    total: Real = Fraction(0) if exact else 0.0
    for world, probability in source.possible_worlds():
        total += probability * count_satisfying_assignments(query, world)
    return total
