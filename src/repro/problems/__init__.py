"""The three unified problems: PQE, Bag-Set Maximization, Shapley values."""

from repro.problems.bagset_max import (
    BagSetInstance,
    decide,
    maximize,
    maximize_brute_force,
    maximize_greedy,
    maximize_profile,
    maximize_via_lineage,
    optimal_repair,
)
from repro.problems.expected_count import (
    expected_answer_count,
    expected_answer_count_brute_force,
    expected_answer_count_direct,
)
from repro.problems.resilience import (
    ResilienceInstance,
    contingency_set,
    resilience,
    resilience_brute_force,
    resilience_of_database,
    resilience_via_lineage,
)
from repro.problems.possible_worlds import ProbabilisticDatabase
from repro.problems.pqe import (
    marginal_probability,
    marginal_probability_brute_force,
    marginal_probability_via_lineage,
)
from repro.problems.shapley import (
    ShapleyInstance,
    banzhaf_value,
    banzhaf_value_brute_force,
    efficiency_gap,
    sat_counts,
    sat_counts_brute_force,
    sat_counts_via_lineage,
    sat_vector,
    shapley_value,
    shapley_value_by_permutations,
    shapley_value_monte_carlo,
    shapley_values,
)

__all__ = [
    "BagSetInstance",
    "ProbabilisticDatabase",
    "ResilienceInstance",
    "ShapleyInstance",
    "banzhaf_value",
    "banzhaf_value_brute_force",
    "contingency_set",
    "decide",
    "efficiency_gap",
    "expected_answer_count",
    "expected_answer_count_brute_force",
    "expected_answer_count_direct",
    "marginal_probability",
    "marginal_probability_brute_force",
    "marginal_probability_via_lineage",
    "maximize",
    "maximize_brute_force",
    "maximize_greedy",
    "maximize_profile",
    "maximize_via_lineage",
    "optimal_repair",
    "resilience",
    "resilience_brute_force",
    "resilience_of_database",
    "resilience_via_lineage",
    "sat_counts",
    "sat_counts_brute_force",
    "sat_counts_via_lineage",
    "sat_vector",
    "shapley_value",
    "shapley_value_by_permutations",
    "shapley_value_monte_carlo",
    "shapley_values",
]
