"""Probabilistic Query Evaluation (Section 5.4, Theorem 5.8).

Given a hierarchical SJF-BCQ ``Q`` and a tuple-independent probabilistic
database, compute the marginal probability that ``Q`` holds in a random
world.  The unified algorithm instantiates the probability 2-monoid of
Definition 5.7 and annotates each fact with its probability; it specializes
exactly to the Dalvi–Suciu safe-plan algorithm and runs in ``O(|D|)``.

Baselines provided for validation and the E3 crossover experiment:

* :func:`marginal_probability_brute_force` — possible-world enumeration
  (exponential, exact);
* :func:`marginal_probability_via_lineage` — φ-evaluation of the read-once
  lineage (the Theorem 6.4 route, independent of the direct instantiation).
"""

from __future__ import annotations

from fractions import Fraction

from repro.algebra.probability import (
    ExactProbabilityMonoid,
    Probability,
    ProbabilityMonoid,
)
from repro.algebra.provenance import evaluate_tree
from repro.core.lineage import read_once_lineage
from repro.db.evaluation import evaluates_true
from repro.problems.possible_worlds import ProbabilisticDatabase
from repro.query.bcq import BCQ


def _monoid_for(exact: bool) -> ProbabilityMonoid:
    return ExactProbabilityMonoid() if exact else ProbabilityMonoid()


def marginal_probability(
    query: BCQ,
    database: ProbabilisticDatabase,
    exact: bool = False,
    *,
    policy: str = "rule1_first",
    kernel_mode: str = "auto",
) -> Probability:
    """Marginal probability of *query* via Algorithm 1 (Theorem 5.8).

    Parameters
    ----------
    query:
        A hierarchical SJF-BCQ (non-hierarchical queries raise
        :class:`~repro.exceptions.NotHierarchicalError`).
    database:
        The tuple-independent probabilistic database.
    exact:
        Use exact rational arithmetic (probabilities must be rationals).
    policy:
        Elimination policy (``"min_support"`` uses relation statistics).
    kernel_mode:
        ``"auto"`` for batched kernels, ``"scalar"`` for the per-tuple
        baseline (benchmarking).
    """
    from repro.engine import Engine

    session = Engine(policy=policy, kernel_mode=kernel_mode).open(
        query, probabilistic=database
    )
    return session.pqe(exact=exact)


def marginal_probability_brute_force(
    query: BCQ,
    database: ProbabilisticDatabase,
    exact: bool = False,
) -> Probability:
    """Possible-world enumeration: ``Σ_{W ⊨ Q} Pr[W]`` (exponential baseline)."""
    source = database.as_exact() if exact else database
    total: Probability = Fraction(0) if exact else 0.0
    for world, probability in source.possible_worlds():
        if evaluates_true(query, world):
            total += probability
    return total


def marginal_probability_via_lineage(
    query: BCQ,
    database: ProbabilisticDatabase,
    exact: bool = False,
) -> Probability:
    """Evaluate through the read-once lineage (the Theorem 6.4 φ-route).

    Builds the decomposable provenance tree with Algorithm 1 over the
    provenance 2-monoid, then maps it into the probability 2-monoid.  Must
    agree with :func:`marginal_probability`; the tests enforce this.
    """
    source = database.as_exact() if exact else database
    monoid = _monoid_for(exact)
    tree = read_once_lineage(query, source.support_database())
    return evaluate_tree(tree, monoid, lambda fact: source.probability(fact))
