"""Shapley Value Computation (Section 5.6, Theorem 5.16).

The database splits into exogenous facts ``Dx`` (always present) and
endogenous facts ``Dn``.  The Shapley value of an endogenous fact ``f`` is
the probability, over a uniformly random permutation of ``Dn``, that
inserting ``f`` flips ``Q`` from false to true (Definition 5.12).

Following Livshits–Bertossi–Kimelfeld–Sebag, the value reduces to the counts
``#Sat(k)`` — the number of size-``k`` endogenous subsets making ``Q`` true
(Definition 5.13) — which the unified algorithm computes with the
Definition 5.14 2-monoid and the Definition 5.15 ψ-annotation
(exogenous ↦ 1, endogenous ↦ ★).

Baselines:

* :func:`sat_counts_brute_force` — subset enumeration;
* :func:`shapley_value_by_permutations` — the Definition 5.12 formula verbatim;
* :func:`shapley_value_monte_carlo` — sampled permutations (experiment E7
  measures its convergence against the exact algorithm).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from fractions import Fraction
from itertools import combinations, permutations

from repro.algebra.provenance import evaluate_tree
from repro.algebra.shapley import SatVector, ShapleyMonoid
from repro.core.lineage import read_once_lineage
from repro.db.database import Database
from repro.db.evaluation import evaluates_true
from repro.db.fact import Fact
from repro.exceptions import ReproError
from repro.query.bcq import BCQ
from repro.query.elimination import Policy


@dataclass(frozen=True)
class ShapleyInstance:
    """A database split into exogenous and endogenous parts (Definition 5.12)."""

    exogenous: Database
    endogenous: Database

    def __post_init__(self) -> None:
        overlap = [
            fact for fact in self.endogenous.facts() if fact in self.exogenous
        ]
        if overlap:
            raise ReproError(
                f"facts cannot be both exogenous and endogenous: {overlap[:3]}"
            )

    def validate_against(self, query: BCQ) -> None:
        self.exogenous.validate_against(query)
        self.endogenous.validate_against(query)

    @property
    def endogenous_count(self) -> int:
        return len(self.endogenous)

    def full_database(self) -> Database:
        return self.exogenous.union(self.endogenous)


def annotation_psi(instance: ShapleyInstance, monoid: ShapleyMonoid):
    """The ψ of Definition 5.15: exogenous ↦ 1, endogenous ↦ ★, else 0."""
    exogenous = frozenset(instance.exogenous.facts())
    endogenous = frozenset(instance.endogenous.facts())

    def psi(fact: Fact) -> SatVector:
        if fact in exogenous:
            return monoid.one
        if fact in endogenous:
            return monoid.star
        return monoid.zero

    return psi


def sat_vector(
    query: BCQ,
    instance: ShapleyInstance,
    *,
    policy: str = "rule1_first",
    kernel_mode: str = "auto",
) -> SatVector:
    """Run Algorithm 1 and return the full ``#Sat`` vector (Theorem 5.16).

    ``kernel_mode="auto"`` routes the ⊕/⊗ batches through the Kronecker
    convolution kernel; ``"scalar"`` runs the per-tuple Definition 5.14
    convolutions (the benchmark baseline).  Both produce bit-identical
    exact integer vectors.
    """
    return _session(
        query, instance, policy=policy, kernel_mode=kernel_mode
    ).sat_vector()


def _session(
    query: BCQ,
    instance: ShapleyInstance,
    *,
    policy: Policy | str = "rule1_first",
    kernel_mode: str = "auto",
):
    """A throwaway engine session bound to *instance*'s split."""
    from repro.engine import Engine

    return Engine(policy=policy, kernel_mode=kernel_mode).open(
        query, exogenous=instance.exogenous, endogenous=instance.endogenous
    )


def sat_counts(
    query: BCQ,
    instance: ShapleyInstance,
    *,
    policy: str = "rule1_first",
    kernel_mode: str = "auto",
) -> tuple[int, ...]:
    """``#Sat(k)`` for ``k = 0 .. |Dn|`` via the unified algorithm."""
    return sat_vector(
        query, instance, policy=policy, kernel_mode=kernel_mode
    ).true_counts


def sat_counts_via_lineage(query: BCQ, instance: ShapleyInstance) -> tuple[int, ...]:
    """Theorem 6.4 φ-route through the read-once lineage (cross-check path).

    The φ of Section 6.5 counts subsets of ``Dn[F]`` — the endogenous facts
    *appearing* in the lineage formula — whereas Definition 5.13 counts
    subsets of all of ``Dn``.  Endogenous facts absent from the lineage
    (dangling facts) never change the truth value but do shift subset sizes,
    so we pad the tree's vector with one irrelevant-fact factor per unused
    endogenous fact: ``u(0, true) = u(1, true) = 1``.
    """
    instance.validate_against(query)
    monoid = ShapleyMonoid(instance.endogenous_count + 1)
    psi = annotation_psi(instance, monoid)
    tree = read_once_lineage(query, instance.full_database())
    value = evaluate_tree(tree, monoid, psi)
    unused = [
        fact for fact in instance.endogenous.facts() if fact not in tree.support
    ]
    if unused:
        length = monoid.length
        irrelevant_true = (1, 1) + (0,) * (length - 2) if length > 1 else (1,)
        irrelevant = SatVector(
            false_counts=(0,) * length, true_counts=irrelevant_true
        )
        for _ in unused:
            value = monoid.mul(value, irrelevant)
    return value.true_counts


def sat_counts_brute_force(
    query: BCQ, instance: ShapleyInstance
) -> tuple[int, ...]:
    """Subset enumeration of Definition 5.13 (exponential baseline)."""
    instance.validate_against(query)
    endogenous = list(instance.endogenous.facts())
    counts = [0] * (len(endogenous) + 1)
    for size in range(len(endogenous) + 1):
        for chosen in combinations(endogenous, size):
            world = instance.exogenous.with_facts(chosen)
            if evaluates_true(query, world):
                counts[size] += 1
    return tuple(counts)


# ----------------------------------------------------------------------
# From #Sat to Shapley values (the Livshits et al. reduction, Section 5.6)
# ----------------------------------------------------------------------
def shapley_value(
    query: BCQ,
    instance: ShapleyInstance,
    fact: Fact,
    *,
    policy: str = "rule1_first",
) -> Fraction:
    """Exact Shapley value of *fact* via two ``#Sat`` computations.

    Implements the summation at the end of Section 5.6::

        Shapley(f) = Σ_k  k!·(n−k−1)!/n! · (#Sat_{Dx∪{f}, Dn∖{f}}(k)
                                            − #Sat_{Dx, Dn∖{f}}(k))

    with ``n = |Dn|``, using the unified algorithm for both counts.  The two
    counts run on one shared ψ-annotated database through an engine session
    (the fact's ψ is flipped in place), with identical outputs.
    """
    return _session(query, instance, policy=policy).shapley_value(fact)


def shapley_values(
    query: BCQ,
    instance: ShapleyInstance,
    *,
    policy: str = "rule1_first",
) -> dict[Fact, Fraction]:
    """Shapley values of *all* endogenous facts.

    One engine session serves all ``2·|Dn|`` #Sat runs from a single
    annotated database with warm packed-operand caches.
    """
    return _session(query, instance, policy=policy).shapley_values()


def shapley_value_by_permutations(
    query: BCQ, instance: ShapleyInstance, fact: Fact
) -> Fraction:
    """Definition 5.12 verbatim: average the flip indicator over all |Dn|!
    permutations.  Factorial-time; tests only."""
    if fact not in instance.endogenous:
        raise ReproError(f"{fact} is not an endogenous fact of the instance")
    endogenous = list(instance.endogenous.facts())
    flips = 0
    total = 0
    for order in permutations(endogenous):
        total += 1
        position = order.index(fact)
        before = instance.exogenous.with_facts(order[:position])
        if evaluates_true(query, before):
            continue
        if evaluates_true(query, before.with_facts([fact])):
            flips += 1
    return Fraction(flips, total)


def shapley_value_monte_carlo(
    query: BCQ,
    instance: ShapleyInstance,
    fact: Fact,
    samples: int,
    seed: int = 0,
) -> float:
    """Sampled-permutation estimate of the Shapley value (experiment E7)."""
    if fact not in instance.endogenous:
        raise ReproError(f"{fact} is not an endogenous fact of the instance")
    if samples < 1:
        raise ReproError("at least one sample is required")
    rng = random.Random(seed)
    endogenous = list(instance.endogenous.facts())
    flips = 0
    for _ in range(samples):
        order = endogenous[:]
        rng.shuffle(order)
        position = order.index(fact)
        before = instance.exogenous.with_facts(order[:position])
        if evaluates_true(query, before):
            continue
        if evaluates_true(query, before.with_facts([fact])):
            flips += 1
    return flips / samples


def banzhaf_value(
    query: BCQ,
    instance: ShapleyInstance,
    fact: Fact,
    *,
    policy: str = "rule1_first",
) -> Fraction:
    """The Banzhaf power index of *fact* — a second attribution from #Sat.

    ``Banzhaf(f) = 2^{-(|Dn|-1)} · Σ_{D' ⊆ Dn∖{f}} (Q(Dx ∪ D' ∪ {f}) −
    Q(Dx ∪ D'))``: the probability that *f* flips the query when every other
    endogenous fact is included independently with probability 1/2.  It
    falls out of the same two ``#Sat`` vectors the Shapley reduction uses —
    the unifying algorithm pays nothing extra for it.
    """
    return _session(query, instance, policy=policy).banzhaf_value(fact)


def banzhaf_value_brute_force(
    query: BCQ, instance: ShapleyInstance, fact: Fact
) -> Fraction:
    """Banzhaf by direct subset enumeration (exponential baseline)."""
    if fact not in instance.endogenous:
        raise ReproError(f"{fact} is not an endogenous fact of the instance")
    others = [f for f in instance.endogenous.facts() if f != fact]
    flips = 0
    for size in range(len(others) + 1):
        for chosen in combinations(others, size):
            base = instance.exogenous.with_facts(chosen)
            if evaluates_true(query, base):
                continue
            if evaluates_true(query, base.with_facts([fact])):
                flips += 1
    return Fraction(flips, 2 ** len(others))


def efficiency_gap(query: BCQ, instance: ShapleyInstance) -> Fraction:
    """The efficiency axiom residual (should be zero).

    The Shapley values of all endogenous facts must sum to
    ``1[Q(Dx ∪ Dn)] − 1[Q(Dx)]``; tests assert this gap vanishes.
    """
    total = sum(shapley_values(query, instance).values(), Fraction(0))
    grand = Fraction(1 if evaluates_true(query, instance.full_database()) else 0)
    baseline = Fraction(1 if evaluates_true(query, instance.exogenous) else 0)
    return total - (grand - baseline)
