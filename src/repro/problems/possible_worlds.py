"""Tuple-independent probabilistic databases and their possible worlds.

A tuple-independent probabilistic database (TID) assigns each fact an
independent probability of being present.  A *possible world* is a subset of
the facts; its probability is the product of the chosen facts' probabilities
and the complements of the omitted ones.  Enumeration is exponential and
exists purely as the brute-force baseline for experiment E3.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Iterator, Mapping

from repro.db.database import Database
from repro.db.fact import Fact
from repro.exceptions import AlgebraError

Probability = float | Fraction


class ProbabilisticDatabase:
    """A tuple-independent probabilistic database.

    Parameters
    ----------
    probabilities:
        Mapping from facts to their (independent) marginal probabilities.
    """

    def __init__(self, probabilities: Mapping[Fact, Probability]):
        self._probabilities: dict[Fact, Probability] = {}
        for fact, probability in probabilities.items():
            if not 0 <= probability <= 1:
                raise AlgebraError(
                    f"fact {fact} has invalid probability {probability!r}"
                )
            self._probabilities[fact] = probability

    @classmethod
    def uniform(cls, facts: Iterable[Fact], probability: Probability) -> "ProbabilisticDatabase":
        """All facts share one probability (common benchmark workload)."""
        return cls({fact: probability for fact in facts})

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def probability(self, fact: Fact) -> Probability:
        """Marginal probability of *fact* (0 for unknown facts)."""
        return self._probabilities.get(fact, 0)

    def facts(self) -> tuple[Fact, ...]:
        return tuple(sorted(self._probabilities, key=repr))

    def support_database(self) -> Database:
        """The deterministic database containing every possible fact."""
        return Database(self._probabilities)

    def as_exact(self) -> "ProbabilisticDatabase":
        """Convert all probabilities to :class:`fractions.Fraction`."""
        return ProbabilisticDatabase(
            {
                fact: probability
                if isinstance(probability, Fraction)
                else Fraction(probability).limit_denominator(10**12)
                for fact, probability in self._probabilities.items()
            }
        )

    def __len__(self) -> int:
        return len(self._probabilities)

    # ------------------------------------------------------------------
    # Possible worlds (exponential; baseline only)
    # ------------------------------------------------------------------
    def possible_worlds(self) -> Iterator[tuple[Database, Probability]]:
        """Enumerate all ``2^n`` worlds with their probabilities."""
        facts = self.facts()

        def worlds(
            index: int, chosen: list[Fact], probability: Probability
        ) -> Iterator[tuple[Database, Probability]]:
            if index == len(facts):
                yield Database(chosen), probability
                return
            fact = facts[index]
            p = self._probabilities[fact]
            if p != 0:
                chosen.append(fact)
                yield from worlds(index + 1, chosen, probability * p)
                chosen.pop()
            complement = 1 - p
            if complement != 0:
                yield from worlds(index + 1, chosen, probability * complement)

        one: Probability = (
            Fraction(1)
            if any(isinstance(p, Fraction) for p in self._probabilities.values())
            else 1.0
        )
        yield from worlds(0, [], one)
