"""Engine configuration: monoid registry, policy, kernel mode, cache limits.

An :class:`Engine` is cheap to construct and stateless apart from its
configuration; all heavy, reusable state lives on the
:class:`~repro.engine.session.EngineSession` objects it opens (and in the
process-wide plan cache, which the engine exposes and can resize).
"""

from __future__ import annotations

from typing import Callable, Mapping

from repro.algebra.bagset import BagSetMonoid
from repro.algebra.base import TwoMonoid
from repro.algebra.probability import ExactProbabilityMonoid, ProbabilityMonoid
from repro.algebra.real import RealSemiring
from repro.algebra.resilience import ResilienceMonoid
from repro.algebra.shapley import ShapleyMonoid
from repro.core.algorithm import KERNEL_MODES
from repro.core.plan import (
    clear_plan_cache,
    plan_cache_info,
    set_plan_cache_size,
)
from repro.exceptions import ReproError
from repro.query.bcq import BCQ
from repro.query.elimination import Policy, policy_names

MonoidFactory = Callable[..., TwoMonoid]


def _probability_monoid(exact: bool = False) -> TwoMonoid:
    return ExactProbabilityMonoid() if exact else ProbabilityMonoid()


def _expectation_semiring(exact: bool = False) -> TwoMonoid:
    return RealSemiring(exact=exact)


#: The built-in monoid registry: one factory per problem family.  Factories
#: receive the family's parameters (``exact`` for the probability carriers,
#: the vector ``length`` for Shapley/bag-set).  Engines copy this mapping, so
#: :meth:`Engine.register_monoid` never mutates the defaults.
DEFAULT_MONOID_FACTORIES: dict[str, MonoidFactory] = {
    "probability": _probability_monoid,
    "expectation": _expectation_semiring,
    "shapley": ShapleyMonoid,
    "bagset": BagSetMonoid,
    "resilience": ResilienceMonoid,
}


class Engine:
    """Evaluation-engine configuration; open sessions with :meth:`open`.

    Parameters
    ----------
    policy:
        Elimination policy used by every session this engine opens — a name
        from :func:`repro.query.elimination.policy_names` or a callable
        policy (callables bypass the plan cache).
    kernel_mode:
        Execution tier for every session this engine opens (see
        :data:`repro.core.algorithm.KERNEL_MODES`): ``"auto"``/``"array"``
        run flat-carrier monoids on the columnar numpy tier (falling back
        to the batched kernels for exact carriers or when numpy is not
        installed), ``"sharded"`` additionally fans eligible plans out
        across the process pool of :mod:`repro.core.sharded` (key-range
        shards over shared-memory columns, one final ⊕-fold; delegating
        to the array tier below the auto-selection threshold),
        ``"batched"`` forces the batched kernels, and ``"scalar"`` forces
        per-element monoid dispatch (the benchmark baseline).  Sessions
        cache each annotated database's columnar views, so repeated
        requests skip the dict → column conversion.
    plan_cache_size:
        When given, resizes the compiled-plan LRU cache.  The cache is
        **process-wide** (shared by every engine and the legacy one-shot
        entry points; equivalent to calling
        :func:`repro.core.plan.set_plan_cache_size` yourself), so the last
        configured size wins — set it once at application startup.
    memo_limit:
        Entry cap for each session's result memo (and per-fact #Sat pair
        memo).  ``None`` (the default) keeps the memos unbounded; with a
        limit, the least-recently-used entry is evicted past capacity and
        counted in ``session.stats()["memo"]["evictions"]``.  Long-running
        serving deployments set this to bound memory.
    monoids:
        Extra/overriding monoid factories merged over
        :data:`DEFAULT_MONOID_FACTORIES`.

    Examples
    --------
    >>> from repro import Engine, ProbabilisticDatabase, Fact, parse_query
    >>> q = parse_query("Q() :- R(X), S(X,Y)")
    >>> pdb = ProbabilisticDatabase({Fact("R", (1,)): 0.5,
    ...                              Fact("S", (1, 2)): 1.0})
    >>> session = Engine().open(q, probabilistic=pdb)
    >>> session.pqe()
    0.5
    """

    def __init__(
        self,
        *,
        policy: Policy | str = "rule1_first",
        kernel_mode: str = "auto",
        plan_cache_size: int | None = None,
        memo_limit: int | None = None,
        monoids: Mapping[str, MonoidFactory] | None = None,
    ):
        if kernel_mode not in KERNEL_MODES:
            raise ReproError(
                f"unknown kernel mode {kernel_mode!r}; "
                f"expected one of {KERNEL_MODES}"
            )
        if memo_limit is not None and memo_limit < 1:
            raise ReproError(
                f"memo_limit must be a positive integer or None, "
                f"got {memo_limit}"
            )
        if isinstance(policy, str) and policy not in policy_names():
            raise ReproError(
                f"unknown elimination policy {policy!r}; "
                f"expected one of {policy_names()} or a callable"
            )
        self.policy = policy
        self.kernel_mode = kernel_mode
        self.memo_limit = memo_limit
        self._factories: dict[str, MonoidFactory] = dict(
            DEFAULT_MONOID_FACTORIES
        )
        if monoids:
            self._factories.update(monoids)
        if plan_cache_size is not None:
            set_plan_cache_size(plan_cache_size)

    # ------------------------------------------------------------------
    # Monoid registry
    # ------------------------------------------------------------------
    def register_monoid(self, family: str, factory: MonoidFactory) -> None:
        """Register (or override) the monoid factory for *family*."""
        self._factories[family] = factory

    def create_monoid(self, family: str, *args, **kwargs) -> TwoMonoid:
        """Instantiate the monoid serving *family* with the given params."""
        try:
            factory = self._factories[family]
        except KeyError:
            raise ReproError(
                f"no monoid registered for family {family!r}; "
                f"registered families: {self.monoid_families()}"
            ) from None
        return factory(*args, **kwargs)

    def monoid_families(self) -> list[str]:
        """The registered family names, sorted."""
        return sorted(self._factories)

    # ------------------------------------------------------------------
    # Sessions
    # ------------------------------------------------------------------
    def open(self, query: BCQ, **data) -> "EngineSession":
        """Open a session binding *query* to the given data sources.

        Keyword data sources (all optional; each request validates that the
        sources it needs are present):

        ``database``
            A plain :class:`~repro.db.database.Database` — resilience,
            bag-set maximization (as the base ``D``), grouped evaluation,
            incremental maintenance.
        ``probabilistic``
            A tuple-independent probabilistic database — PQE and expected
            answer count.
        ``exogenous`` / ``endogenous``
            The Definition 5.12 split — Shapley/Banzhaf and resilience.
        ``repair``
            The repair database ``Dr`` — bag-set maximization.
        ``annotated``
            A pre-built :class:`~repro.db.annotated.KDatabase` for raw
            Algorithm 1 runs via :meth:`EngineSession.run`.
        """
        from repro.engine.session import EngineSession

        return EngineSession(self, query, **data)

    # ------------------------------------------------------------------
    # Plan-cache observability (the CLI `repro cache` surface)
    # ------------------------------------------------------------------
    def plan_cache_info(self) -> dict[str, int]:
        """Hit/miss/size counters of the shared compiled-plan cache."""
        return plan_cache_info()

    def clear_plan_cache(self) -> None:
        """Drop every memoized compiled plan."""
        clear_plan_cache()

    def __repr__(self) -> str:
        policy = (
            self.policy if isinstance(self.policy, str)
            else getattr(self.policy, "__name__", "<callable>")
        )
        return (
            f"Engine(policy={policy!r}, kernel_mode={self.kernel_mode!r}, "
            f"families={self.monoid_families()})"
        )
