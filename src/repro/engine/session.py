"""EngineSession: one query + one database, many evaluation requests.

A session owns the per-workload state the one-shot front-ends used to rebuild
on every call:

* the ψ-annotated :class:`~repro.db.annotated.KDatabase` of each problem
  family (built once via the bulk annotation path, then reused — and, under
  the array tier, with the columnar views seeded straight from the fact
  stream);
* the monoid instances — and therefore their kernels, including the Shapley
  kernel's packed big-int operand caches, which stay warm across every fold
  step and every request the session answers;
* compiled plans (through the process-wide LRU cache, keyed per policy and
  per support statistics) and grouped (free-variable) plans;
* a **result memo**: :meth:`EngineSession.request` answers repeated requests
  from a cache keyed by the request signature and the version fingerprint of
  the annotated state it depends on, so a mutation of the underlying data
  automatically invalidates exactly the stale entries.

Shapley/Banzhaf values additionally reuse **one** annotated database for all
``2·|Dn|`` #Sat runs of the Livshits et al. reduction: instead of building
the forced/removed instances from scratch per fact, the session flips the
fact's ψ in place (``★ → 1`` / ``★ → 0``), runs, and restores — bit-identical
to the one-shot reduction because truncated convolutions agree on every entry
below the truncation length.

Thread-safety: sessions may be shared across worker threads (the
:mod:`repro.serve` subsystem pools them).  Cache builds are serialized by a
session lock — so concurrent requests needing the same ψ-annotation share
one build — and the Shapley mutate-run-restore cycle holds a dedicated lock
for its whole duration, serializing every run over the Shapley-annotated
database with the in-place ψ-flips.  Plain evaluation over the other (never
mutated) annotated databases runs without any lock held.

Example — bind one probabilistic database, answer repeated requests
through the memo:

>>> from fractions import Fraction
>>> from repro import Engine, Fact, ProbabilisticDatabase, parse_query
>>> query = parse_query("Q() :- R(X), S(X)")
>>> pdb = ProbabilisticDatabase({
...     Fact("R", (1,)): Fraction(1, 2),
...     Fact("S", (1,)): Fraction(1, 2),
... })
>>> session = Engine().open(query, probabilistic=pdb)
>>> session.pqe(exact=True)
Fraction(1, 4)
>>> session.request("pqe", exact=True)  # first request: computed, memoized
Fraction(1, 4)
>>> session.request("pqe", exact=True)  # repeat: served from the memo
Fraction(1, 4)
>>> session.stats()["memo"]["hits"]
1
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from fractions import Fraction
from typing import Callable, Iterable

from repro.algebra.base import K, TwoMonoid
from repro.core.algorithm import (
    KERNEL_MODES,
    StepHook,
    compile_for_database,
    execute_plan,
)
from repro.core.grouped import (
    GroupedPlan,
    compile_grouped_plan,
    execute_grouped_plan,
)
from repro.core.fused import FusedTask, execute_fused
from repro.core.incremental import IncrementalEvaluator
from repro.core.plan import binding_occurrences, plan_cache_info
from repro.db.annotated import KDatabase, KRelation
from repro.db.database import Database
from repro.db.fact import Fact
from repro.exceptions import ReproError
from repro.obs import MetricsRegistry
from repro.problems.bagset_max import BagSetInstance
from repro.problems.bagset_max import annotation_psi as _bagset_psi
from repro.problems.possible_worlds import ProbabilisticDatabase
from repro.problems.resilience import ResilienceInstance
from repro.problems.resilience import annotation_psi as _resilience_psi
from repro.problems.shapley import ShapleyInstance
from repro.problems.shapley import annotation_psi as _shapley_psi
from repro.query.atoms import Variable
from repro.query.bcq import BCQ

RequestHandler = Callable[..., object]

#: The request families :meth:`EngineSession.request` (and therefore the
#: serving layer) can dispatch: family name → handler called as
#: ``handler(session, **params)``.  Extend with
#: :func:`register_request_family`.
REQUEST_FAMILIES: dict[str, RequestHandler] = {
    "run": lambda session: session.run(),
    "pqe": (
        lambda session, exact=False, binding=None:
        session.pqe(exact=exact, binding=binding)
    ),
    "expected_count": (
        lambda session, exact=False, binding=None:
        session.expected_count(exact=exact, binding=binding)
    ),
    "sat_vector": lambda session: session.sat_vector(),
    "sat_counts": lambda session: session.sat_counts(),
    "shapley_value": lambda session, fact: session.shapley_value(fact),
    "shapley_values": lambda session: session.shapley_values(),
    "banzhaf_value": lambda session, fact: session.banzhaf_value(fact),
    "banzhaf_values": lambda session: session.banzhaf_values(),
    "resilience": lambda session: session.resilience(),
    "bagset_profile": (
        lambda session, budget, vector_length=None:
        session.bagset_profile(budget, vector_length)
    ),
    "maximize": lambda session, budget: session.maximize(budget),
}


def register_request_family(family: str, handler: RequestHandler) -> None:
    """Register (or override) a request family for :meth:`EngineSession.request`.

    *handler* is called as ``handler(session, **params)``.  Results of
    unknown-to-the-memo families are fingerprinted over the session's whole
    annotated state, so memoization stays conservative but correct.
    """
    REQUEST_FAMILIES[family] = handler


#: Sentinel state key: "the bound pre-annotated database" (``annotated=…``).
_RAW_STATE = object()

#: Handler parameter defaults, for signature canonicalization: a request
#: spelling a default explicitly (``pqe(exact=False)``) must coalesce and
#: memo-hit with the bare spelling (``pqe()``).
_PARAM_DEFAULTS: dict[str, dict[str, object]] = {
    "pqe": {"exact": False, "binding": None},
    "expected_count": {"exact": False, "binding": None},
    "bagset_profile": {"vector_length": None},
}

#: Families whose handlers accept a parameter ``binding`` — the constant
#: lifting of :class:`repro.core.plan.ParameterizedPlan`, and the unit the
#: shared-scan fuser (:mod:`repro.core.fused`) batches on.
_BINDING_FAMILIES = ("pqe", "expected_count")


def canonical_binding(binding) -> tuple | None:
    """Normalize a parameter binding to sorted ``(variable, value)`` pairs.

    Accepts a mapping, an iterable of pairs, or ``None``; an empty binding
    canonicalizes to ``None`` (an unbound request).  The result is hashable,
    so it survives into memo keys and :class:`repro.serve.request.Request`
    signatures unchanged.
    """
    if binding is None:
        return None
    items = binding.items() if hasattr(binding, "items") else binding
    normalized = tuple(
        sorted((str(variable), value) for variable, value in items)
    )
    return normalized or None


def canonical_params(family: str, params: dict) -> dict:
    """Drop parameters that restate the family handler's defaults.

    Used by :meth:`EngineSession.request` and
    :class:`repro.serve.request.Request` so the memo and the scheduler's
    single-flight coalescing key on request *semantics*, not spelling.
    Bindings are normalized first (see :func:`canonical_binding`) so every
    spelling of one parameter sweep point coalesces.
    """
    if family in _BINDING_FAMILIES and "binding" in params:
        params = {**params, "binding": canonical_binding(params["binding"])}
    defaults = _PARAM_DEFAULTS.get(family)
    if not defaults:
        return params
    return {
        name: value
        for name, value in params.items()
        if not (name in defaults and defaults[name] == value)
    }


def _bagset_length(params: dict) -> int:
    vector_length = params.get("vector_length")
    budget = params["budget"]
    return max(
        vector_length if vector_length is not None else budget + 1, 1
    )


def _shapley_state_keys(_params: dict) -> tuple:
    return ("shapley",)


#: Which annotated-database cache entries a family's answer depends on —
#: the memo's invalidation granularity.  A family absent here (a custom
#: registration) is fingerprinted over every annotated database the session
#: holds.
_FAMILY_STATE: dict[str, Callable[[dict], tuple]] = {
    "run": lambda params: (_RAW_STATE,),
    "pqe": lambda params: (("pqe", bool(params.get("exact", False))),),
    "expected_count": (
        lambda params: (("expected_count", bool(params.get("exact", False))),)
    ),
    "sat_vector": _shapley_state_keys,
    "sat_counts": _shapley_state_keys,
    "shapley_value": _shapley_state_keys,
    "shapley_values": _shapley_state_keys,
    "banzhaf_value": _shapley_state_keys,
    "banzhaf_values": _shapley_state_keys,
    "resilience": lambda params: ("resilience",),
    "bagset_profile": lambda params: (("bagset", _bagset_length(params)),),
    "maximize": lambda params: (("bagset", params["budget"] + 1),),
}

#: Per-fact / per-slice families answerable from a memoized whole-family
#: sweep: family → (sweep family, derivation).  The derivation returns
#: ``None`` when the sweep cannot answer (e.g. a non-endogenous fact), which
#: falls through to the family's own handler and its error reporting.
_DERIVED_FROM: dict[str, tuple[str, Callable[[object, dict], object]]] = {
    "shapley_value": (
        "shapley_values", lambda sweep, params: sweep.get(params["fact"])
    ),
    "banzhaf_value": (
        "banzhaf_values", lambda sweep, params: sweep.get(params["fact"])
    ),
    "sat_counts": (
        "sat_vector", lambda vector, _params: vector.true_counts
    ),
}


#: stats()-key → Prometheus family for the session work counters; one
#: shared table so the stats() view and the /metrics exposition can never
#: drift apart.
_SESSION_COUNTER_FAMILIES: dict[str, tuple[str, str]] = {
    "evaluations": (
        "repro_session_evaluations_total",
        "Plan executions issued by this session state.",
    ),
    "annotation_builds": (
        "repro_annotation_builds_total",
        "ψ-annotated database builds.",
    ),
    "memo_hits": (
        "repro_memo_hits_total",
        "Result-memo hits (including sweep-derived answers).",
    ),
    "memo_misses": (
        "repro_memo_misses_total",
        "Result-memo misses.",
    ),
    "fused_batches": (
        "repro_session_fused_batches_total",
        "Shared-scan batches of 2+ queries this session ran.",
    ),
    "fused_queries": (
        "repro_session_fused_queries_total",
        "Queries answered inside those shared-scan batches.",
    ),
}


def _session_metrics(registry: MetricsRegistry):
    """Resolve the session work counters on *registry*, keyed by stats() name."""
    return {
        key: registry.counter(name, help_text).labels()
        for key, (name, help_text) in _SESSION_COUNTER_FAMILIES.items()
    }


class ResultMemo(OrderedDict):
    """A size-capped LRU mapping backing the session result memos.

    With ``limit=None`` (the default) it behaves exactly like a plain dict.
    With a limit, inserting past capacity evicts the least-recently-*used*
    entry — :meth:`get` hits refresh recency — and counts the eviction in
    :attr:`evictions`, which :meth:`EngineSession.stats` (and the pool
    stats) surface as memo pressure.  Eviction is silent and safe: a
    re-asked evicted request is simply recomputed.
    """

    def __init__(self, limit: int | None = None):
        if limit is not None and limit < 1:
            raise ReproError(
                f"memo limit must be a positive integer or None, got {limit}"
            )
        super().__init__()
        self.limit = limit
        self.evictions = 0

    def get(self, key, default=None):
        """Dict ``get`` that also refreshes the entry's LRU recency."""
        try:
            value = super().__getitem__(key)
        except KeyError:
            return default
        self.move_to_end(key)
        return value

    def __setitem__(self, key, value) -> None:
        super().__setitem__(key, value)
        self.move_to_end(key)
        if self.limit is not None:
            while len(self) > self.limit:
                self.popitem(last=False)
                self.evictions += 1


class EngineSession:
    """Answers many evaluation requests over one query and one database.

    Open sessions through :meth:`repro.engine.engine.Engine.open`; the engine
    supplies the policy, kernel mode and monoid registry, the session caches
    everything data-dependent.  The bound data sources are treated as
    immutable for the session's lifetime (use :meth:`incremental` for
    update workloads); a bound pre-annotated database (``annotated=…``) may
    mutate, and the :meth:`request` memo detects that through its version
    fingerprint.
    """

    def __init__(
        self,
        engine,
        query: BCQ,
        *,
        database: Database | None = None,
        probabilistic: ProbabilisticDatabase | None = None,
        exogenous: Database | None = None,
        endogenous: Database | None = None,
        repair: Database | None = None,
        annotated: KDatabase | None = None,
    ):
        query.require_self_join_free()
        self.engine = engine
        self.query = query
        self._database = database
        self._probabilistic = probabilistic
        self._exogenous = exogenous
        self._endogenous = endogenous
        self._repair = repair
        self._raw_annotated = annotated
        # Whether annotation builds should seed columnar views eagerly
        # (see KDatabase.bulk_annotate): exactly when the engine's kernel
        # mode can select the array tier.
        self._columnar_builds = engine.kernel_mode in (
            "auto", "sharded", "array"
        )
        # Circuit-breaker hook: a non-None override replaces the engine's
        # kernel mode for this session's runs (see degrade_kernel_mode).
        # Deliberately per-session, NOT shared via share_state_from — the
        # breaker trips the session object it observed failing.
        self._kernel_override: str | None = None
        # Reusable state, keyed per problem family / parameters.  Everything
        # below may be *shared* with sibling sessions via
        # :meth:`share_state_from` (the SessionPool), so all of it is only
        # touched under ``_lock`` (or ``_shapley_lock`` for the Shapley
        # mutate-restore cycle).
        self._lock = threading.RLock()
        self._shapley_lock = threading.RLock()
        # Per-cache-key build latches: concurrent requests needing the SAME
        # ψ-annotation share one build, while different families build in
        # parallel and memo lookups never block behind a build.
        self._build_locks: dict[object, threading.Lock] = {}
        self._annotated: dict[object, KDatabase] = {}
        self._monoids: dict[object, TwoMonoid] = {}
        self._grouped_plans: dict[frozenset[Variable], GroupedPlan] = {}
        self._sources: dict[bool, ProbabilisticDatabase] = {}
        self._instances: dict[str, object] = {}
        # Result memo: (family, canonical params) → (fingerprint, value),
        # LRU-capped by the engine's memo_limit (None = unbounded).
        memo_limit = getattr(engine, "memo_limit", None)
        self._results: ResultMemo = ResultMemo(memo_limit)
        # Per-fact #Sat pair memo: fact → (fingerprint, (with_f, without_f)).
        # Shapley AND Banzhaf values of one fact derive from the same two
        # #Sat runs; caching the pair makes the second attribution free.
        # Capped like the result memo — the packed count vectors are the
        # session's largest per-entry residents.
        self._sat_pairs: ResultMemo = ResultMemo(memo_limit)
        # Work counters live on a per-session-state MetricsRegistry (shared
        # across siblings by share_state_from); stats() is a view over it
        # and the HTTP front-end scrapes it directly.
        self._registry = MetricsRegistry()
        self._metrics = _session_metrics(self._registry)
        self._register_state_gauges()

    def _register_state_gauges(self) -> None:
        """Callback gauges over the memo, evaluated only at scrape time."""
        registry = self._registry
        registry.gauge(
            "repro_memo_entries", "Entries currently in the result memo."
        ).labels().set_function(lambda: len(self._results))
        registry.gauge(
            "repro_memo_evictions",
            "Result- and #Sat-pair-memo LRU evictions so far.",
        ).labels().set_function(
            lambda: self._results.evictions + self._sat_pairs.evictions
        )

    # ------------------------------------------------------------------
    # State sharing (the SessionPool hand-off)
    # ------------------------------------------------------------------
    def share_state_from(self, donor: "EngineSession") -> None:
        """Adopt *donor*'s reusable state so both sessions serve one cache.

        After this call the two sessions share the annotated databases (and
        therefore their columnar views), monoid instances (and their packed
        kernel caches), grouped plans, result memo, counters and locks.  The
        caller must guarantee the sessions are bound to the same query and
        the same data source objects — :class:`repro.serve.SessionPool` keys
        its registry on exactly that.
        """
        self._lock = donor._lock
        self._shapley_lock = donor._shapley_lock
        self._build_locks = donor._build_locks
        self._annotated = donor._annotated
        self._monoids = donor._monoids
        self._grouped_plans = donor._grouped_plans
        self._sources = donor._sources
        self._instances = donor._instances
        self._results = donor._results
        self._sat_pairs = donor._sat_pairs
        self._registry = donor._registry
        self._metrics = donor._metrics

    # ------------------------------------------------------------------
    # Kernel-tier override (the circuit breaker's degrade hook)
    # ------------------------------------------------------------------
    @property
    def kernel_mode(self) -> str:
        """The session's effective kernel mode (override or engine default).

        All modes produce bit-identical results, so a degraded session's
        answers are indistinguishable from the engine-configured tier —
        only the execution cost differs.
        """
        return self._kernel_override or self.engine.kernel_mode

    def degrade_kernel_mode(self, mode: str) -> None:
        """Override this session's kernel mode (typically ``"batched"``).

        Used by :class:`repro.serve.admission.CircuitBreaker` to step a
        failing session off the array tier while keeping results
        bit-identical; :meth:`restore_kernel_mode` undoes it.
        """
        if mode not in KERNEL_MODES:
            raise ReproError(
                f"unknown kernel mode {mode!r}; expected one of {KERNEL_MODES}"
            )
        self._kernel_override = mode

    def restore_kernel_mode(self) -> None:
        """Drop the kernel-mode override, restoring the engine's tier."""
        self._kernel_override = None

    # ------------------------------------------------------------------
    # Shared execution helpers
    # ------------------------------------------------------------------
    def _run(self, annotated: KDatabase, on_step: StepHook | None = None):
        self._metrics["evaluations"].inc()
        plan = compile_for_database(self.query, annotated, self.engine.policy)
        return execute_plan(
            plan,
            annotated,
            on_step=on_step,
            kernel_mode=self.kernel_mode,
        ).result

    def _annotate(
        self,
        monoid: TwoMonoid,
        facts: Iterable[Fact],
        annotation_of: Callable[[Fact], K],
    ) -> KDatabase:
        """One ψ-annotation build honoring the engine's columnar seeding."""
        return KDatabase.annotate(
            self.query, monoid, facts, annotation_of,
            columnar=self._columnar_builds,
        )

    def _annotated_for(
        self, key: object, build: Callable[[], KDatabase]
    ) -> KDatabase:
        # Double-checked per-key latch: the session lock only guards the
        # dictionaries (briefly); the expensive annotation build runs under
        # a per-key lock, so identical requests share ONE build while
        # unrelated families build concurrently.
        with self._lock:
            annotated = self._annotated.get(key)
            if annotated is not None:
                return annotated
            build_lock = self._build_locks.get(key)
            if build_lock is None:
                build_lock = threading.Lock()
                self._build_locks[key] = build_lock
        with build_lock:
            with self._lock:
                annotated = self._annotated.get(key)
                if annotated is not None:
                    return annotated
            annotated = build()
            with self._lock:
                self._annotated[key] = annotated
            self._metrics["annotation_builds"].inc()
            return annotated

    def _monoid_for(self, key: object, family: str, *args, **kwargs):
        with self._lock:
            monoid = self._monoids.get(key)
            if monoid is None:
                monoid = self.engine.create_monoid(family, *args, **kwargs)
                self._monoids[key] = monoid
            return monoid

    def _require(self, value, what: str, hint: str):
        if value is None:
            raise ReproError(
                f"this session has no {what}; open the session with "
                f"Engine.open(query, {hint})"
            )
        return value

    # ------------------------------------------------------------------
    # The memoizing request entry point (the serving layer's unit of work)
    # ------------------------------------------------------------------
    def _request_fingerprint(self, family: str, params: dict) -> tuple:
        """Version fingerprint of the annotated state *family* depends on.

        ``None`` entries stand for state not built yet; integer entries are
        :meth:`KDatabase._version_fingerprint` values, which change with any
        relation mutation.  Compared on memo lookup, so a mutation of the
        underlying database evicts exactly the dependent entries.
        """
        state_of = _FAMILY_STATE.get(family)
        if state_of is None:
            # Unknown (custom) family: conservatively fingerprint every
            # annotated database the session holds, plus the raw one.
            keys: tuple = (
                _RAW_STATE, *sorted(self._annotated, key=repr),
            )
        else:
            keys = state_of(params)
        parts = []
        for key in keys:
            annotated = (
                self._raw_annotated if key is _RAW_STATE
                else self._annotated.get(key)
            )
            parts.append(
                None if annotated is None
                else annotated._version_fingerprint()
            )
        return tuple(parts)

    def request(self, family: str, *, trace=None, **params):
        """Serve one request through the session result memo.

        Dispatches to the family's handler (see :data:`REQUEST_FAMILIES`)
        unless a previous answer for the same ``(family, params)`` signature
        is still valid — i.e. the version fingerprint of the annotated state
        the family depends on has not changed since it was computed.  Hits
        and misses are counted in :meth:`stats`; :meth:`invalidate` drops
        entries explicitly.  Per-fact families additionally answer from a
        memoized whole-family sweep (``shapley_value`` from
        ``shapley_values``, ``banzhaf_value`` from ``banzhaf_values``,
        ``sat_counts`` from ``sat_vector``) — the scheduler's batching
        relies on that.  Memoized results are shared objects: treat them as
        immutable.

        *trace*, when given, is a :class:`repro.obs.Trace`: it receives a
        ``memo_hit`` or ``executed`` mark so request lifecycles show where
        the answer came from.
        """
        handler = REQUEST_FAMILIES.get(family)
        if handler is None:
            raise ReproError(
                f"unknown request family {family!r}; known families: "
                f"{sorted(REQUEST_FAMILIES)}"
            )
        params = canonical_params(family, params)
        hit, value = self._memo_probe(family, params)
        if hit:
            if trace is not None:
                trace.mark("memo_hit")
            return value
        with self._lock:
            before = self._request_fingerprint(family, params)
        value = handler(self, **params)
        if trace is not None:
            trace.mark("executed", kernel_mode=self.kernel_mode)
        self._memo_store(family, params, before, value)
        return value

    def _memo_probe(self, family: str, params: dict) -> tuple[bool, object]:
        """``(hit?, value)`` for one canonicalized request signature.

        The lookup half of :meth:`request`, shared with
        :meth:`evaluate_many`: probes the memo (evicting stale entries),
        then the family's derived sweep, and counts the hit or miss.
        """
        key = (family, tuple(sorted(params.items())))
        with self._lock:
            entry = self._results.get(key)
            if entry is not None:
                if entry[0] == self._request_fingerprint(family, params):
                    self._metrics["memo_hits"].inc()
                    return True, entry[1]
                del self._results[key]  # stale: underlying versions moved
            derived = _DERIVED_FROM.get(family)
            if derived is not None:
                sweep_family, derive = derived
                sweep_entry = self._results.get((sweep_family, ()))
                if sweep_entry is not None and sweep_entry[0] == (
                    self._request_fingerprint(sweep_family, {})
                ):
                    value = derive(sweep_entry[1], params)
                    if value is not None:
                        self._metrics["memo_hits"].inc()
                        self._results[key] = (
                            self._request_fingerprint(family, params), value
                        )
                        return True, value
            self._metrics["memo_misses"].inc()
            return False, None

    def _memo_store(
        self, family: str, params: dict, before: tuple, value
    ) -> None:
        """Memoize *value* unless dependent state moved during execution.

        Store only when the dependent state did not move underneath the
        execution: a ``None`` component may become a fingerprint (the
        handler built that state itself), but a changed fingerprint means
        a concurrent mutation — memoizing then would pin a possibly-stale
        value under the new fingerprint.
        """
        key = (family, tuple(sorted(params.items())))
        with self._lock:
            after = self._request_fingerprint(family, params)
            if len(before) == len(after) and all(
                old is None or old == new
                for old, new in zip(before, after)
            ):
                self._results[key] = (after, value)

    def _normalize_request(self, request) -> tuple[str, dict]:
        """``(family, canonical params)`` of one :meth:`evaluate_many` item."""
        if isinstance(request, tuple) and len(request) == 2:
            family, params = request
            params = dict(params or {})
        else:
            family = getattr(request, "family", None)
            kwargs = getattr(request, "kwargs", None)
            if family is None or kwargs is None:
                raise ReproError(
                    f"cannot interpret {request!r} as a request: expected a "
                    "(family, params) pair or an object with family/kwargs "
                    "attributes"
                )
            params = dict(kwargs)
        if family not in REQUEST_FAMILIES:
            raise ReproError(
                f"unknown request family {family!r}; known families: "
                f"{sorted(REQUEST_FAMILIES)}"
            )
        return family, canonical_params(family, params)

    def evaluate_many(self, requests, *, use_memo: bool = True) -> list:
        """Answer a batch of requests, fusing compatible ones per scan.

        *requests* holds ``(family, params)`` pairs and/or request-like
        objects with ``family``/``kwargs`` attributes
        (:class:`repro.serve.request.Request`); results align positionally
        with the input.  Binding-carrying ``pqe``/``expected_count``
        requests that miss the memo are grouped by
        :func:`repro.core.fused.execute_fused` — same annotated database,
        same plan scan signature — and answered in one stacked columnar
        pass, counted by the ``fused_batches``/``fused_queries`` stats;
        every other request takes the standard :meth:`request` path.
        Either way the answers are bit-identical to a sequential loop
        (bound serial requests *are* width-1 fused runs).
        """
        normalized = [
            self._normalize_request(request) for request in requests
        ]
        results: list = [None] * len(normalized)
        tasks: list[FusedTask] = []
        pending: list[tuple[int, tuple | None]] = []
        for index, (family, params) in enumerate(normalized):
            if not (family in _BINDING_FAMILIES and params.get("binding")):
                results[index] = (
                    self.request(family, **params)
                    if use_memo
                    else REQUEST_FAMILIES[family](self, **params)
                )
                continue
            before = None
            if use_memo:
                hit, value = self._memo_probe(family, params)
                if hit:
                    results[index] = value
                    continue
                with self._lock:
                    before = self._request_fingerprint(family, params)
            annotated = self._probability_annotated(
                family, bool(params.get("exact", False))
            )
            tasks.append(self._bound_task(annotated, params["binding"]))
            pending.append((index, before))
        if tasks:
            report = execute_fused(tasks, kernel_mode=self.kernel_mode)
            self._metrics["evaluations"].inc(len(tasks))
            if report.fused_batches:
                self._metrics["fused_batches"].inc(report.fused_batches)
                self._metrics["fused_queries"].inc(report.fused_queries)
            for (index, before), value in zip(pending, report.results):
                results[index] = value
                if use_memo and before is not None:
                    family, params = normalized[index]
                    self._memo_store(family, params, before, value)
        return results

    def invalidate(self, family: str | None = None) -> None:
        """Drop memoized request results (all, or one family's).

        Stale entries are also evicted automatically on lookup when the
        underlying :class:`~repro.db.annotated.KRelation` versions changed;
        this is the explicit override for out-of-band invalidation (the
        SessionPool wires it to database mutation hooks).
        """
        with self._lock:
            if family is None:
                self._results.clear()
            else:
                for key in [k for k in self._results if k[0] == family]:
                    del self._results[key]

    # ------------------------------------------------------------------
    # Raw Algorithm 1 (pre-annotated databases)
    # ------------------------------------------------------------------
    def run(self, on_step: StepHook | None = None):
        """Algorithm 1 over the bound pre-annotated database (``annotated=``)."""
        annotated = self._require(
            self._raw_annotated, "pre-annotated database", "annotated=…"
        )
        return self._run(annotated, on_step=on_step)

    def evaluate(
        self,
        monoid: TwoMonoid[K],
        facts: Iterable[Fact],
        annotation_of: Callable[[Fact], K],
        *,
        cache_key: object = None,
    ) -> K:
        """ψ-annotate *facts* in bulk and run Algorithm 1.

        The generic request shape behind ``evaluate_hierarchical``; pass a
        *cache_key* to keep the built annotated database on the session for
        reuse by later identical requests.
        """
        def build() -> KDatabase:
            return self._annotate(monoid, facts, annotation_of)

        if cache_key is None:
            annotated = build()
            self._metrics["annotation_builds"].inc()
        else:
            annotated = self._annotated_for(cache_key, build)
        return self._run(annotated)

    # ------------------------------------------------------------------
    # PQE / expected answer count (probabilistic databases)
    # ------------------------------------------------------------------
    def _probability_source(self, exact: bool) -> ProbabilisticDatabase:
        with self._lock:
            source = self._sources.get(exact)
            if source is None:
                base = self._require(
                    self._probabilistic,
                    "probabilistic database",
                    "probabilistic=…",
                )
                source = base.as_exact() if exact else base
                self._sources[exact] = source
            return source

    def _probability_annotated(self, family: str, exact: bool) -> KDatabase:
        """The cached ψ-annotated database behind ``pqe``/``expected_count``."""
        source = self._probability_source(exact)
        monoid_family = "probability" if family == "pqe" else "expectation"
        monoid = self._monoid_for(
            (monoid_family, exact), monoid_family, exact=exact
        )
        return self._annotated_for(
            (family, exact),
            lambda: self._annotate(
                monoid,
                source.facts(),
                lambda fact: monoid.validate(source.probability(fact)),
            ),
        )

    def pqe(self, exact: bool = False, binding=None):
        """Marginal probability of the query (Theorem 5.8).

        With *binding* — ``(variable, value)`` pairs or a mapping — the
        answer is for the lifted query ``Q(c)``: the database restricted to
        the binding's section ``σ_{X=c}`` at every occurrence of each bound
        variable (see :class:`repro.core.plan.ParameterizedPlan`).  Bound
        requests execute as width-1 shared-scan runs over the *same*
        annotated database, so batching them through
        :meth:`evaluate_many` is bit-identical, just faster.
        """
        annotated = self._probability_annotated("pqe", exact)
        binding = canonical_binding(binding)
        if binding is None:
            return self._run(annotated)
        return self._run_bound(annotated, binding)

    def expected_count(self, exact: bool = False, binding=None):
        """``E[Q(D)]`` over the real semiring (linearity of expectation).

        *binding* restricts to the section ``σ_{X=c}`` exactly as in
        :meth:`pqe`.
        """
        annotated = self._probability_annotated("expected_count", exact)
        binding = canonical_binding(binding)
        if binding is None:
            return self._run(annotated)
        return self._run_bound(annotated, binding)

    def _masked_database(self, annotated: KDatabase, binding) -> KDatabase:
        """A throwaway copy of *annotated* restricted to a binding's section.

        The serial fallback of constant lifting when the columnar tier is
        unavailable: keeps exactly the support tuples matching the binding,
        with their annotations, preserving insertion order.  Deliberately
        not cached on the session — distinct bindings are unbounded; the
        result memo caches the *answers* instead.
        """
        values = dict(binding)
        occurrences = binding_occurrences(self.query, tuple(values))
        masked = KDatabase(self.query, annotated.monoid)
        for relation in annotated.relations():
            positions = occurrences.get(relation.atom.relation, ())
            keys: list = []
            annotations: list = []
            for key, annotation in relation._annotations.items():
                if all(key[pos] == values[var] for pos, var in positions):
                    keys.append(key)
                    annotations.append(annotation)
            masked.relation(relation.atom.relation).bulk_load(
                keys, annotations
            )
        return masked

    def _bound_task(
        self, annotated: KDatabase, binding
    ) -> FusedTask:
        """One shared-scan task answering this query under *binding*."""
        plan = compile_for_database(self.query, annotated, self.engine.policy)
        return FusedTask(
            plan=plan,
            annotated=annotated,
            binding=binding,
            fallback=lambda: execute_plan(
                plan,
                self._masked_database(annotated, binding),
                kernel_mode=self.kernel_mode,
            ).result,
        )

    def _run_bound(self, annotated: KDatabase, binding):
        """Serve one bound request: a width-1 fused run (or its fallback)."""
        self._metrics["evaluations"].inc()
        task = self._bound_task(annotated, binding)
        return execute_fused(
            [task], kernel_mode=self.kernel_mode
        ).results[0]

    # ------------------------------------------------------------------
    # Shapley / Banzhaf (exogenous/endogenous splits)
    # ------------------------------------------------------------------
    def shapley_instance(self) -> ShapleyInstance:
        """The bound Definition 5.12 split (validated against the query)."""
        with self._lock:
            instance = self._instances.get("shapley")
            if instance is None:
                endogenous = self._require(
                    self._endogenous, "endogenous database", "endogenous=…"
                )
                instance = ShapleyInstance(
                    exogenous=self._exogenous or Database(),
                    endogenous=endogenous,
                )
                instance.validate_against(self.query)
                self._instances["shapley"] = instance
            return instance

    def _shapley_state(self):
        instance = self.shapley_instance()
        monoid = self._monoid_for(
            "shapley", "shapley", instance.endogenous_count + 1
        )
        psi = _shapley_psi(instance, monoid)
        facts = [*instance.exogenous.facts(), *instance.endogenous.facts()]
        annotated = self._annotated_for(
            "shapley",
            lambda: self._annotate(monoid, facts, psi),
        )
        return instance, monoid, annotated

    def sat_vector(self):
        """The full ``#Sat`` vector (Theorem 5.16)."""
        _instance, _monoid, annotated = self._shapley_state()
        # Serialized with the _sat_pair ψ-flips: a concurrent per-fact
        # computation must never observe this run mid-flip (or vice versa).
        with self._shapley_lock:
            return self._run(annotated)

    def sat_counts(self) -> tuple[int, ...]:
        """``#Sat(k)`` for ``k = 0 .. |Dn|``."""
        return self.sat_vector().true_counts

    def _sat_pair(self, fact: Fact):
        """``#Sat`` true-slices with *fact* forced in, then removed.

        Flips the fact's ψ on the shared annotated database instead of
        building the two shifted instances of the reduction from scratch.
        The session monoid is one entry longer than the shifted instances
        need (``|Dn|+1`` vs ``|Dn|``); truncated convolutions agree on every
        common entry, so the counts consumed below are bit-identical.

        The whole flip-run-restore cycle holds the Shapley lock, and the
        relation's version counter is restored along with the annotation:
        the content ends bit-identical to the start, so version-keyed state
        (memo fingerprints, columnar views, decline verdicts) derived from
        it stays valid across the transient flips.

        The pair itself is memoized per fact (validated by the annotated
        database's version fingerprint): the Shapley value and the Banzhaf
        index of one fact consume the same two runs, so whichever is asked
        second pays nothing.
        """
        instance, monoid, annotated = self._shapley_state()
        if fact not in instance.endogenous:
            raise ReproError(
                f"{fact} is not an endogenous fact of the instance"
            )
        name = fact.relation
        relation = annotated.relation(name)
        with self._shapley_lock:
            fingerprint = annotated._version_fingerprint()
            cached = self._sat_pairs.get(fact)
            if cached is not None and cached[0] == fingerprint:
                return cached[1]
            original = relation.annotation(fact.values)
            version = annotated.relation_version(name)
            try:
                relation.set(fact.values, monoid.one)
                with_f = self._run(annotated).true_counts
                relation.set(fact.values, monoid.zero)
                without_f = self._run(annotated).true_counts
            finally:
                relation.set(fact.values, original)
                annotated.restore_relation_version(name, version)
            # The restore put the fingerprint back to its entry value, so
            # the memoized pair is keyed by the state it was computed from.
            self._sat_pairs[fact] = (fingerprint, (with_f, without_f))
        return with_f, without_f

    def shapley_value(self, fact: Fact) -> Fraction:
        """Exact Shapley value of *fact* (the Section 5.6 reduction)."""
        with_f, without_f = self._sat_pair(fact)
        n = self.shapley_instance().endogenous_count
        n_factorial = math.factorial(n)
        total = Fraction(0)
        for k in range(n):
            weight = Fraction(
                math.factorial(k) * math.factorial(n - k - 1), n_factorial
            )
            total += weight * (with_f[k] - without_f[k])
        return total

    def shapley_values(self) -> dict[Fact, Fraction]:
        """Shapley values of all endogenous facts over one shared database."""
        return {
            fact: self.shapley_value(fact)
            for fact in self.shapley_instance().endogenous.facts()
        }

    def banzhaf_value(self, fact: Fact) -> Fraction:
        """The Banzhaf power index of *fact* (same two #Sat runs)."""
        with_f, without_f = self._sat_pair(fact)
        n = self.shapley_instance().endogenous_count
        flips = sum(with_f[k] - without_f[k] for k in range(n))
        return Fraction(flips, 2 ** (n - 1)) if n > 0 else Fraction(0)

    def banzhaf_values(self) -> dict[Fact, Fraction]:
        """Banzhaf indices of all endogenous facts."""
        return {
            fact: self.banzhaf_value(fact)
            for fact in self.shapley_instance().endogenous.facts()
        }

    # ------------------------------------------------------------------
    # Resilience
    # ------------------------------------------------------------------
    def resilience_instance(self) -> ResilienceInstance:
        """The bound deletable/undeletable split.

        Uses the ``exogenous``/``endogenous`` sources when given, otherwise
        treats the plain ``database`` as fully endogenous (the classical
        setting).
        """
        with self._lock:
            instance = self._instances.get("resilience")
            if instance is None:
                if self._endogenous is not None:
                    endogenous = self._endogenous
                else:
                    endogenous = self._require(
                        self._database,
                        "database for resilience",
                        "database=… or endogenous=…",
                    )
                instance = ResilienceInstance(
                    exogenous=self._exogenous or Database(),
                    endogenous=endogenous,
                )
                instance.validate_against(self.query)
                self._instances["resilience"] = instance
            return instance

    def resilience(self):
        """Minimum endogenous deletions falsifying the query (∞ if none)."""
        instance = self.resilience_instance()
        monoid = self._monoid_for("resilience", "resilience")
        psi = _resilience_psi(instance, monoid)
        facts = [*instance.exogenous.facts(), *instance.endogenous.facts()]
        annotated = self._annotated_for(
            "resilience",
            lambda: self._annotate(monoid, facts, psi),
        )
        return self._run(annotated)

    # ------------------------------------------------------------------
    # Bag-set maximization
    # ------------------------------------------------------------------
    def bagset_profile(
        self, budget: int, vector_length: int | None = None
    ):
        """The full budget profile of ``(D, Dr, θ=budget)`` (Theorem 5.11).

        Many budgets can be served from one session; the annotated database
        is cached per vector length (ψ depends only on the truncation).
        """
        database = self._require(self._database, "base database", "database=…")
        repair = self._require(self._repair, "repair database", "repair=…")
        instance = BagSetInstance(
            database=database, repair_database=repair, budget=budget
        )
        instance.validate_against(self.query)
        length = max(
            vector_length if vector_length is not None else budget + 1, 1
        )
        monoid = self._monoid_for(("bagset", length), "bagset", length)
        psi = _bagset_psi(instance, monoid)
        facts = [*instance.database.facts(), *instance.addable_facts()]
        annotated = self._annotated_for(
            ("bagset", length),
            lambda: self._annotate(monoid, facts, psi),
        )
        return self._run(annotated)

    def maximize(self, budget: int) -> int:
        """The Bag-Set Maximization answer ``q(θ)`` at *budget*."""
        profile = self.bagset_profile(budget)
        return profile[min(budget, len(profile) - 1)]

    # ------------------------------------------------------------------
    # Grouped (free-variable) evaluation
    # ------------------------------------------------------------------
    def grouped_plan(self, free_variables: Iterable[Variable]) -> GroupedPlan:
        """The compiled free-variable plan (memoized per free set)."""
        free = frozenset(free_variables)
        with self._lock:
            plan = self._grouped_plans.get(free)
            if plan is None:
                plan = compile_grouped_plan(self.query, free)
                self._grouped_plans[free] = plan
            return plan

    def grouped(
        self,
        free_variables: Iterable[Variable],
        monoid: TwoMonoid[K],
        annotation_of: Callable[[Fact], K] | None = None,
        facts: Iterable[Fact] | None = None,
    ) -> KRelation[K]:
        """Per-answer K-annotations over the free variables.

        Defaults to the session's plain database with the ⊗-identity
        annotation; pass *facts*/*annotation_of* for other carriers.
        """
        plan = self.grouped_plan(free_variables)
        if facts is None:
            facts = self._require(
                self._database, "database", "database=…"
            ).facts()
        fn = annotation_of or (lambda _fact: monoid.one)
        annotated = self._annotate(monoid, facts, fn)
        self._metrics["annotation_builds"].inc()
        return execute_grouped_plan(
            plan, annotated, kernel_mode=self.kernel_mode
        )

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def incremental(
        self,
        monoid: TwoMonoid[K],
        annotation_of: Callable[[Fact], K] | None = None,
        facts: Iterable[Fact] | None = None,
    ) -> IncrementalEvaluator[K]:
        """An update-maintained evaluator seeded from the session's data.

        The evaluator copies the annotated input, so later updates never
        disturb the session's cached state.
        """
        if facts is None:
            facts = self._require(
                self._database, "database", "database=…"
            ).facts()
        fn = annotation_of or (lambda _fact: monoid.one)
        annotated = self._annotate(monoid, facts, fn)
        self._metrics["annotation_builds"].inc()
        return IncrementalEvaluator(
            self.query,
            annotated,
            policy=self.engine.policy,
            kernel_mode=self.kernel_mode,
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    @property
    def metrics_registry(self) -> MetricsRegistry:
        """The session state's metric registry (shared across pool siblings).

        The HTTP front-end composes this with the scheduler's registry into
        one ``/metrics`` exposition; :meth:`stats` is a dict view over the
        same counters.
        """
        return self._registry

    def stats(self) -> dict:
        """Cached-state sizes and work counters for this session.

        Every counter value is read from :attr:`metrics_registry` — the
        keys predate the registry and keep their historical names and
        meanings, but there is only one underlying count.
        """
        metrics = self._metrics
        with self._lock:
            annotated_databases = list(self._annotated.values())
            if self._raw_annotated is not None:
                annotated_databases.append(self._raw_annotated)
            info: dict = {
                "evaluations": metrics["evaluations"].value,
                "annotation_builds": metrics["annotation_builds"].value,
                "fused_batches": metrics["fused_batches"].value,
                "fused_queries": metrics["fused_queries"].value,
                "annotated_databases": len(annotated_databases),
                # Columnar (array-tier) views cached across this session's
                # requests, summed over the session's annotated databases.
                "columnar_relations": sum(
                    database.columnar_cache_info()["relations"]
                    for database in annotated_databases
                ),
                "monoids": len(self._monoids),
                "grouped_plans": len(self._grouped_plans),
                "memo": {
                    "entries": len(self._results),
                    "hits": metrics["memo_hits"].value,
                    "misses": metrics["memo_misses"].value,
                    "limit": self._results.limit,
                    "evictions": (
                        self._results.evictions + self._sat_pairs.evictions
                    ),
                },
                "kernel_mode": self.kernel_mode,
                "plan_cache": plan_cache_info(),
            }
            shapley = self._monoids.get("shapley")
        if shapley is not None:
            from repro.core.kernels import kernel_for

            kernel = kernel_for(shapley)
            cache_info = getattr(kernel, "cache_info", None)
            if cache_info is not None:
                info["shapley_kernel"] = cache_info()
        return info

    def clear(self) -> None:
        """Drop every cached annotated database, monoid, plan and result."""
        with self._lock:
            self._annotated.clear()
            self._build_locks.clear()
            self._monoids.clear()
            self._grouped_plans.clear()
            self._sources.clear()
            self._instances.clear()
            self._results.clear()
            self._sat_pairs.clear()

    def __repr__(self) -> str:
        bound = [
            name
            for name, value in (
                ("database", self._database),
                ("probabilistic", self._probabilistic),
                ("exogenous", self._exogenous),
                ("endogenous", self._endogenous),
                ("repair", self._repair),
                ("annotated", self._raw_annotated),
            )
            if value is not None
        ]
        return f"EngineSession({self.query}, bound={bound})"
