"""EngineSession: one query + one database, many evaluation requests.

A session owns the per-workload state the one-shot front-ends used to rebuild
on every call:

* the ψ-annotated :class:`~repro.db.annotated.KDatabase` of each problem
  family (built once via the bulk annotation path, then reused);
* the monoid instances — and therefore their kernels, including the Shapley
  kernel's packed big-int operand caches, which stay warm across every fold
  step and every request the session answers;
* compiled plans (through the process-wide LRU cache, keyed per policy and
  per support statistics) and grouped (free-variable) plans.

Shapley/Banzhaf values additionally reuse **one** annotated database for all
``2·|Dn|`` #Sat runs of the Livshits et al. reduction: instead of building
the forced/removed instances from scratch per fact, the session flips the
fact's ψ in place (``★ → 1`` / ``★ → 0``), runs, and restores — bit-identical
to the one-shot reduction because truncated convolutions agree on every entry
below the truncation length.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Callable, Iterable

from repro.algebra.base import K, TwoMonoid
from repro.core.algorithm import StepHook, compile_for_database, execute_plan
from repro.core.grouped import (
    GroupedPlan,
    compile_grouped_plan,
    execute_grouped_plan,
)
from repro.core.incremental import IncrementalEvaluator
from repro.core.plan import plan_cache_info
from repro.db.annotated import KDatabase, KRelation
from repro.db.database import Database
from repro.db.fact import Fact
from repro.exceptions import ReproError
from repro.problems.bagset_max import BagSetInstance
from repro.problems.bagset_max import annotation_psi as _bagset_psi
from repro.problems.possible_worlds import ProbabilisticDatabase
from repro.problems.resilience import ResilienceInstance
from repro.problems.resilience import annotation_psi as _resilience_psi
from repro.problems.shapley import ShapleyInstance
from repro.problems.shapley import annotation_psi as _shapley_psi
from repro.query.atoms import Variable
from repro.query.bcq import BCQ


class EngineSession:
    """Answers many evaluation requests over one query and one database.

    Open sessions through :meth:`repro.engine.engine.Engine.open`; the engine
    supplies the policy, kernel mode and monoid registry, the session caches
    everything data-dependent.  The bound data sources are treated as
    immutable for the session's lifetime (use :meth:`incremental` for
    update workloads).
    """

    def __init__(
        self,
        engine,
        query: BCQ,
        *,
        database: Database | None = None,
        probabilistic: ProbabilisticDatabase | None = None,
        exogenous: Database | None = None,
        endogenous: Database | None = None,
        repair: Database | None = None,
        annotated: KDatabase | None = None,
    ):
        query.require_self_join_free()
        self.engine = engine
        self.query = query
        self._database = database
        self._probabilistic = probabilistic
        self._exogenous = exogenous
        self._endogenous = endogenous
        self._repair = repair
        self._raw_annotated = annotated
        # Reusable state, keyed per problem family / parameters.
        self._annotated: dict[object, KDatabase] = {}
        self._monoids: dict[object, TwoMonoid] = {}
        self._grouped_plans: dict[frozenset[Variable], GroupedPlan] = {}
        self._sources: dict[bool, ProbabilisticDatabase] = {}
        self._shapley_instance: ShapleyInstance | None = None
        self._resilience_instance: ResilienceInstance | None = None
        # Work counters (observability; see stats()).
        self._evaluations = 0
        self._annotation_builds = 0

    # ------------------------------------------------------------------
    # Shared execution helpers
    # ------------------------------------------------------------------
    def _run(self, annotated: KDatabase, on_step: StepHook | None = None):
        self._evaluations += 1
        plan = compile_for_database(self.query, annotated, self.engine.policy)
        return execute_plan(
            plan,
            annotated,
            on_step=on_step,
            kernel_mode=self.engine.kernel_mode,
        ).result

    def _annotated_for(
        self, key: object, build: Callable[[], KDatabase]
    ) -> KDatabase:
        annotated = self._annotated.get(key)
        if annotated is None:
            annotated = build()
            self._annotated[key] = annotated
            self._annotation_builds += 1
        return annotated

    def _monoid_for(self, key: object, family: str, *args, **kwargs):
        monoid = self._monoids.get(key)
        if monoid is None:
            monoid = self.engine.create_monoid(family, *args, **kwargs)
            self._monoids[key] = monoid
        return monoid

    def _require(self, value, what: str, hint: str):
        if value is None:
            raise ReproError(
                f"this session has no {what}; open the session with "
                f"Engine.open(query, {hint})"
            )
        return value

    # ------------------------------------------------------------------
    # Raw Algorithm 1 (pre-annotated databases)
    # ------------------------------------------------------------------
    def run(self, on_step: StepHook | None = None):
        """Algorithm 1 over the bound pre-annotated database (``annotated=``)."""
        annotated = self._require(
            self._raw_annotated, "pre-annotated database", "annotated=…"
        )
        return self._run(annotated, on_step=on_step)

    def evaluate(
        self,
        monoid: TwoMonoid[K],
        facts: Iterable[Fact],
        annotation_of: Callable[[Fact], K],
        *,
        cache_key: object = None,
    ) -> K:
        """ψ-annotate *facts* in bulk and run Algorithm 1.

        The generic request shape behind ``evaluate_hierarchical``; pass a
        *cache_key* to keep the built annotated database on the session for
        reuse by later identical requests.
        """
        def build() -> KDatabase:
            return KDatabase.annotate(self.query, monoid, facts, annotation_of)

        if cache_key is None:
            annotated = build()
            self._annotation_builds += 1
        else:
            annotated = self._annotated_for(cache_key, build)
        return self._run(annotated)

    # ------------------------------------------------------------------
    # PQE / expected answer count (probabilistic databases)
    # ------------------------------------------------------------------
    def _probability_source(self, exact: bool) -> ProbabilisticDatabase:
        source = self._sources.get(exact)
        if source is None:
            base = self._require(
                self._probabilistic, "probabilistic database", "probabilistic=…"
            )
            source = base.as_exact() if exact else base
            self._sources[exact] = source
        return source

    def pqe(self, exact: bool = False):
        """Marginal probability of the query (Theorem 5.8)."""
        source = self._probability_source(exact)
        monoid = self._monoid_for(
            ("probability", exact), "probability", exact=exact
        )
        annotated = self._annotated_for(
            ("pqe", exact),
            lambda: KDatabase.annotate(
                self.query,
                monoid,
                source.facts(),
                lambda fact: monoid.validate(source.probability(fact)),
            ),
        )
        return self._run(annotated)

    def expected_count(self, exact: bool = False):
        """``E[Q(D)]`` over the real semiring (linearity of expectation)."""
        source = self._probability_source(exact)
        semiring = self._monoid_for(
            ("expectation", exact), "expectation", exact=exact
        )
        annotated = self._annotated_for(
            ("expected_count", exact),
            lambda: KDatabase.annotate(
                self.query,
                semiring,
                source.facts(),
                lambda fact: semiring.validate(source.probability(fact)),
            ),
        )
        return self._run(annotated)

    # ------------------------------------------------------------------
    # Shapley / Banzhaf (exogenous/endogenous splits)
    # ------------------------------------------------------------------
    def shapley_instance(self) -> ShapleyInstance:
        """The bound Definition 5.12 split (validated against the query)."""
        if self._shapley_instance is None:
            endogenous = self._require(
                self._endogenous, "endogenous database", "endogenous=…"
            )
            instance = ShapleyInstance(
                exogenous=self._exogenous or Database(),
                endogenous=endogenous,
            )
            instance.validate_against(self.query)
            self._shapley_instance = instance
        return self._shapley_instance

    def _shapley_state(self):
        instance = self.shapley_instance()
        monoid = self._monoid_for(
            "shapley", "shapley", instance.endogenous_count + 1
        )
        psi = _shapley_psi(instance, monoid)
        facts = [*instance.exogenous.facts(), *instance.endogenous.facts()]
        annotated = self._annotated_for(
            "shapley",
            lambda: KDatabase.annotate(self.query, monoid, facts, psi),
        )
        return instance, monoid, annotated

    def sat_vector(self):
        """The full ``#Sat`` vector (Theorem 5.16)."""
        _instance, _monoid, annotated = self._shapley_state()
        return self._run(annotated)

    def sat_counts(self) -> tuple[int, ...]:
        """``#Sat(k)`` for ``k = 0 .. |Dn|``."""
        return self.sat_vector().true_counts

    def _sat_pair(self, fact: Fact):
        """``#Sat`` true-slices with *fact* forced in, then removed.

        Flips the fact's ψ on the shared annotated database instead of
        building the two shifted instances of the reduction from scratch.
        The session monoid is one entry longer than the shifted instances
        need (``|Dn|+1`` vs ``|Dn|``); truncated convolutions agree on every
        common entry, so the counts consumed below are bit-identical.
        """
        instance, monoid, annotated = self._shapley_state()
        if fact not in instance.endogenous:
            raise ReproError(
                f"{fact} is not an endogenous fact of the instance"
            )
        relation = annotated.relation(fact.relation)
        original = relation.annotation(fact.values)
        try:
            relation.set(fact.values, monoid.one)
            with_f = self._run(annotated).true_counts
            relation.set(fact.values, monoid.zero)
            without_f = self._run(annotated).true_counts
        finally:
            relation.set(fact.values, original)
        return with_f, without_f

    def shapley_value(self, fact: Fact) -> Fraction:
        """Exact Shapley value of *fact* (the Section 5.6 reduction)."""
        with_f, without_f = self._sat_pair(fact)
        n = self.shapley_instance().endogenous_count
        n_factorial = math.factorial(n)
        total = Fraction(0)
        for k in range(n):
            weight = Fraction(
                math.factorial(k) * math.factorial(n - k - 1), n_factorial
            )
            total += weight * (with_f[k] - without_f[k])
        return total

    def shapley_values(self) -> dict[Fact, Fraction]:
        """Shapley values of all endogenous facts over one shared database."""
        return {
            fact: self.shapley_value(fact)
            for fact in self.shapley_instance().endogenous.facts()
        }

    def banzhaf_value(self, fact: Fact) -> Fraction:
        """The Banzhaf power index of *fact* (same two #Sat runs)."""
        with_f, without_f = self._sat_pair(fact)
        n = self.shapley_instance().endogenous_count
        flips = sum(with_f[k] - without_f[k] for k in range(n))
        return Fraction(flips, 2 ** (n - 1)) if n > 0 else Fraction(0)

    def banzhaf_values(self) -> dict[Fact, Fraction]:
        """Banzhaf indices of all endogenous facts."""
        return {
            fact: self.banzhaf_value(fact)
            for fact in self.shapley_instance().endogenous.facts()
        }

    # ------------------------------------------------------------------
    # Resilience
    # ------------------------------------------------------------------
    def resilience_instance(self) -> ResilienceInstance:
        """The bound deletable/undeletable split.

        Uses the ``exogenous``/``endogenous`` sources when given, otherwise
        treats the plain ``database`` as fully endogenous (the classical
        setting).
        """
        if self._resilience_instance is None:
            if self._endogenous is not None:
                endogenous = self._endogenous
            else:
                endogenous = self._require(
                    self._database,
                    "database for resilience",
                    "database=… or endogenous=…",
                )
            instance = ResilienceInstance(
                exogenous=self._exogenous or Database(),
                endogenous=endogenous,
            )
            instance.validate_against(self.query)
            self._resilience_instance = instance
        return self._resilience_instance

    def resilience(self):
        """Minimum endogenous deletions falsifying the query (∞ if none)."""
        instance = self.resilience_instance()
        monoid = self._monoid_for("resilience", "resilience")
        psi = _resilience_psi(instance, monoid)
        facts = [*instance.exogenous.facts(), *instance.endogenous.facts()]
        annotated = self._annotated_for(
            "resilience",
            lambda: KDatabase.annotate(self.query, monoid, facts, psi),
        )
        return self._run(annotated)

    # ------------------------------------------------------------------
    # Bag-set maximization
    # ------------------------------------------------------------------
    def bagset_profile(
        self, budget: int, vector_length: int | None = None
    ):
        """The full budget profile of ``(D, Dr, θ=budget)`` (Theorem 5.11).

        Many budgets can be served from one session; the annotated database
        is cached per vector length (ψ depends only on the truncation).
        """
        database = self._require(self._database, "base database", "database=…")
        repair = self._require(self._repair, "repair database", "repair=…")
        instance = BagSetInstance(
            database=database, repair_database=repair, budget=budget
        )
        instance.validate_against(self.query)
        length = max(
            vector_length if vector_length is not None else budget + 1, 1
        )
        monoid = self._monoid_for(("bagset", length), "bagset", length)
        psi = _bagset_psi(instance, monoid)
        facts = [*instance.database.facts(), *instance.addable_facts()]
        annotated = self._annotated_for(
            ("bagset", length),
            lambda: KDatabase.annotate(self.query, monoid, facts, psi),
        )
        return self._run(annotated)

    def maximize(self, budget: int) -> int:
        """The Bag-Set Maximization answer ``q(θ)`` at *budget*."""
        profile = self.bagset_profile(budget)
        return profile[min(budget, len(profile) - 1)]

    # ------------------------------------------------------------------
    # Grouped (free-variable) evaluation
    # ------------------------------------------------------------------
    def grouped_plan(self, free_variables: Iterable[Variable]) -> GroupedPlan:
        """The compiled free-variable plan (memoized per free set)."""
        free = frozenset(free_variables)
        plan = self._grouped_plans.get(free)
        if plan is None:
            plan = compile_grouped_plan(self.query, free)
            self._grouped_plans[free] = plan
        return plan

    def grouped(
        self,
        free_variables: Iterable[Variable],
        monoid: TwoMonoid[K],
        annotation_of: Callable[[Fact], K] | None = None,
        facts: Iterable[Fact] | None = None,
    ) -> KRelation[K]:
        """Per-answer K-annotations over the free variables.

        Defaults to the session's plain database with the ⊗-identity
        annotation; pass *facts*/*annotation_of* for other carriers.
        """
        plan = self.grouped_plan(free_variables)
        if facts is None:
            facts = self._require(
                self._database, "database", "database=…"
            ).facts()
        fn = annotation_of or (lambda _fact: monoid.one)
        annotated = KDatabase.annotate(self.query, monoid, facts, fn)
        self._annotation_builds += 1
        return execute_grouped_plan(
            plan, annotated, kernel_mode=self.engine.kernel_mode
        )

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def incremental(
        self,
        monoid: TwoMonoid[K],
        annotation_of: Callable[[Fact], K] | None = None,
        facts: Iterable[Fact] | None = None,
    ) -> IncrementalEvaluator[K]:
        """An update-maintained evaluator seeded from the session's data.

        The evaluator copies the annotated input, so later updates never
        disturb the session's cached state.
        """
        if facts is None:
            facts = self._require(
                self._database, "database", "database=…"
            ).facts()
        fn = annotation_of or (lambda _fact: monoid.one)
        annotated = KDatabase.annotate(self.query, monoid, facts, fn)
        self._annotation_builds += 1
        return IncrementalEvaluator(
            self.query,
            annotated,
            policy=self.engine.policy,
            kernel_mode=self.engine.kernel_mode,
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def stats(self) -> dict:
        """Cached-state sizes and work counters for this session."""
        annotated_databases = list(self._annotated.values())
        if self._raw_annotated is not None:
            annotated_databases.append(self._raw_annotated)
        info: dict = {
            "evaluations": self._evaluations,
            "annotation_builds": self._annotation_builds,
            "annotated_databases": len(annotated_databases),
            # Columnar (array-tier) views cached across this session's
            # requests, summed over the session's annotated databases.
            "columnar_relations": sum(
                database.columnar_cache_info()["relations"]
                for database in annotated_databases
            ),
            "monoids": len(self._monoids),
            "grouped_plans": len(self._grouped_plans),
            "plan_cache": plan_cache_info(),
        }
        shapley = self._monoids.get("shapley")
        if shapley is not None:
            from repro.core.kernels import kernel_for

            kernel = kernel_for(shapley)
            cache_info = getattr(kernel, "cache_info", None)
            if cache_info is not None:
                info["shapley_kernel"] = cache_info()
        return info

    def clear(self) -> None:
        """Drop every cached annotated database, monoid and grouped plan."""
        self._annotated.clear()
        self._monoids.clear()
        self._grouped_plans.clear()
        self._sources.clear()
        self._shapley_instance = None
        self._resilience_instance = None

    def __repr__(self) -> str:
        bound = [
            name
            for name, value in (
                ("database", self._database),
                ("probabilistic", self._probabilistic),
                ("exogenous", self._exogenous),
                ("endogenous", self._endogenous),
                ("repair", self._repair),
                ("annotated", self._raw_annotated),
            )
            if value is not None
        ]
        return f"EngineSession({self.query}, bound={bound})"
