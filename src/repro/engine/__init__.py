"""The unified evaluation engine (serving layer over Algorithm 1).

Every workload in this library runs the same three stages — build the
ψ-annotated database of Definitions 5.10/5.15, compile an elimination order,
fold with the 2-monoid.  This subsystem owns that wiring once:

* :class:`Engine` holds the *configuration*: the monoid registry, the
  elimination policy, the kernel mode and the plan-cache limits;
* :class:`EngineSession` binds one query and one database and answers many
  evaluation requests (PQE, expected count, Shapley/Banzhaf, resilience,
  bag-set maximization, grouped evaluation, incremental deltas) against
  shared state — annotated databases, monoid instances (and thus their
  kernels' packed big-int caches) and compiled plans are built once per
  session and reused across requests.

The legacy one-shot entry points (``run_algorithm``,
``evaluate_hierarchical``, the ``problems.*`` front-ends, the CLI) are thin
adapters that open a throwaway session per call, so their outputs are
identical to the session API by construction.
"""

from repro.engine.engine import DEFAULT_MONOID_FACTORIES, Engine
from repro.engine.session import (
    REQUEST_FAMILIES,
    EngineSession,
    register_request_family,
)

__all__ = [
    "DEFAULT_MONOID_FACTORIES",
    "Engine",
    "EngineSession",
    "REQUEST_FAMILIES",
    "register_request_family",
]
