"""The other side of the dichotomy: NP-hardness via the Theorem 4.4 reduction.

Takes the canonical non-hierarchical query q_nh() :- R(X) ∧ S(X,Y) ∧ T(Y),
plants a balanced k×k biclique in a noisy graph, runs the BCBS → Bag-Set
Maximization reduction, and shows:

* the reduction instance is polynomial in the graph,
* solving the BSM decision recovers exactly the BCBS answer,
* the optimal repair *is* the planted biclique,
* solving time explodes with k — as it must, since Bag-Set Maximization
  Decision is NP-complete for every non-hierarchical query.

Usage::

    python examples/hardness_demo.py
"""

import time

from repro import parse_query
from repro.hardness import (
    decide_bsm_decision_smart,
    extract_biclique_from_repair,
    find_balanced_biclique,
    has_balanced_biclique,
    reduce_bcbs,
)
from repro.workloads.graphs import path_graph, planted_biclique_graph


def main() -> None:
    query = parse_query("Q() :- R(X), S(X, Y), T(Y)")
    print(f"query: {query} (NOT hierarchical: at(X) and at(Y) cross at S)")
    print()

    print("reduction on a planted biclique (k = 2, n = 7, 30% noise):")
    graph, part_one, part_two = planted_biclique_graph(7, 2, noise=0.3, seed=5)
    output = reduce_bcbs(query, graph, 2)
    print(f"  graph: {graph.vertex_count} vertices, {graph.edge_count} edges; "
          f"planted parts {sorted(part_one)} × {sorted(part_two)}")
    print(f"  BSM instance: |D| = {len(output.instance.database)}, "
          f"|Dr| = {len(output.instance.repair_database)}, "
          f"θ = {output.budget}, τ = {output.target}")
    answer = decide_bsm_decision_smart(output)
    direct = has_balanced_biclique(graph, 2)
    print(f"  BSM decision says biclique exists: {answer} "
          f"(direct BCBS solver: {direct})")
    assert answer == direct

    found = find_balanced_biclique(graph, 2)
    assert found is not None
    u1, u2 = found
    witness = output.witness
    r_facts = [
        f for f in output.instance.addable_facts()
        if f.relation == witness.atom_r.relation
        and f.values[witness.atom_r.variables.index(witness.variable_a)] in u1
    ]
    t_facts = [
        f for f in output.instance.addable_facts()
        if f.relation == witness.atom_t.relation
        and f.values[witness.atom_t.variables.index(witness.variable_b)] in u2
    ]
    repaired = output.instance.database.with_facts(r_facts + t_facts)
    recovered = extract_biclique_from_repair(output, repaired)
    print(f"  optimal repair decodes back to the biclique: "
          f"{sorted(recovered[0])} × {sorted(recovered[1])}")
    print()

    print("a NO instance (path graph, no 2×2 biclique):")
    no_output = reduce_bcbs(query, path_graph(7), 2)
    print(f"  BSM decision: {decide_bsm_decision_smart(no_output)} "
          f"(direct: {has_balanced_biclique(path_graph(7), 2)})")
    print()

    print("exponential growth of solving time with k (NP-hardness in action):")
    print(f"{'k':>3} | {'n':>3} | {'|Dr|':>5} | {'decision time [s]':>18}")
    for k in (1, 2, 3):
        n = 2 * k + 3
        graph, _, _ = planted_biclique_graph(n, k, noise=0.25, seed=k)
        output = reduce_bcbs(query, graph, k)
        start = time.perf_counter()
        answer = decide_bsm_decision_smart(output)
        elapsed = time.perf_counter() - start
        print(f"{k:>3} | {n:>3} | {len(output.instance.repair_database):>5} | "
              f"{elapsed:>18.4f}   (answer: {answer})")
    print()
    print("contrast: the hierarchical Eq. (1) query solves million-fact "
          "instances in seconds (see benchmarks E2/E4).")


if __name__ == "__main__":
    main()
