"""Bag-set maximization as data repair: growing an ad campaign's reach.

Scenario: a campaign database has ``Creative(C, B)`` (creative C exists for
brand B... pinned to one brand here), ``Slot(C, P)`` (creative C is booked on
placement P) and ``Audience(C, P, U)`` (user segment U sees creative C on
placement P).  The number of (creative, placement, user-segment) impressions
is the bag-set value of the hierarchical query

    Reach() :- Creative(C, B) ∧ Slot(C, P) ∧ Audience(C, P, U)

(the Eq. (1) query, relabeled).  Procurement offers a menu of extra facts
(the repair database) — new creatives, new slot bookings, new audience
buys — and a budget θ of contracts to sign.  Algorithm 1 with the
Definition 5.9 2-monoid finds the reach-maximizing spend exactly; the script
compares it against the greedy planner and exhaustive search.

Usage::

    python examples/ad_campaign_repair.py
"""

import random

from repro import (
    BagSetInstance,
    Database,
    count_satisfying_assignments,
    maximize,
    maximize_brute_force,
    maximize_greedy,
    maximize_profile,
    parse_query,
)
from repro.db.fact import Fact


def build_campaign(seed: int) -> tuple[Database, Database]:
    """A small current campaign plus a procurement menu."""
    rng = random.Random(seed)
    creatives = [f"c{i}" for i in range(4)]
    placements = [f"p{i}" for i in range(4)]
    segments = [f"u{i}" for i in range(5)]
    current: list[Fact] = [Fact("Creative", (creatives[0], "brand"))]
    menu: list[Fact] = []
    for creative in creatives[1:]:
        menu.append(Fact("Creative", (creative, "brand")))
    for creative in creatives:
        for placement in rng.sample(placements, 2):
            target = current if rng.random() < 0.3 else menu
            target.append(Fact("Slot", (creative, placement)))
            for segment in rng.sample(segments, rng.randint(1, 3)):
                target = current if rng.random() < 0.3 else menu
                target.append(Fact("Audience", (creative, placement, segment)))
    return Database(current), Database(menu)


def main() -> None:
    query = parse_query(
        "Reach() :- Creative(C, B), Slot(C, P), Audience(C, P, U)"
    )
    print(f"query: {query} (hierarchical — Eq. (1) relabeled)")
    current, menu = build_campaign(seed=11)
    print(f"current campaign: {len(current)} facts, "
          f"procurement menu: {len(menu)} facts")
    print(f"current reach: {count_satisfying_assignments(query, current)}")
    print()

    print("reach by contract budget (unified algorithm, one run):")
    budget = 6
    instance = BagSetInstance(current, menu, budget=budget)
    profile = maximize_profile(query, instance)
    print(f"{'θ':>3} | {'optimal reach':>13} | {'greedy reach':>12}")
    for theta in range(budget + 1):
        greedy = maximize_greedy(
            query, BagSetInstance(current, menu, budget=theta)
        )
        print(f"{theta:>3} | {profile[theta]:>13} | {greedy:>12}")
    print()

    small = BagSetInstance(current, menu, budget=3)
    exact = maximize(query, small)
    brute = maximize_brute_force(query, small)
    print(f"exhaustive check at θ=3: unified={exact}, brute force={brute}")
    assert exact == brute
    gaps = [
        theta for theta in range(budget + 1)
        if maximize_greedy(query, BagSetInstance(current, menu, theta))
        < profile[theta]
    ]
    if gaps:
        print(f"greedy is strictly suboptimal at budgets {gaps} — "
              "conjunctive gains are not submodular")
    else:
        print("greedy happened to match the optimum on this instance")


if __name__ == "__main__":
    main()
