"""What-if analysis on one database: four 2-monoids, one algorithm.

The point of the paper is that Algorithm 1 is *generic*: change the 2-monoid
and the fact annotations, and the same elimination plan answers a different
question.  This example runs four analyses over a single supply-chain
database for the hierarchical query

    Supplied() :- Vendor(V, R') ∧ Contract(V, P) ∧ Shipment(V, P, W)

("some vendor has a contract for a part and a shipment of it"):

1. **Per-answer view** (free variable V, counting semiring): how many
   (part, shipment) combinations each vendor contributes;
2. **Fragility** (resilience 2-monoid): how many record deletions would
   break supply entirely, and which records form a minimum cut;
3. **Repair planning** (bag-set 2-monoid): the best way to spend a budget of
   new records from a procurement menu — with the concrete optimal repair;
4. **Attribution** (Shapley/#Sat 2-monoid): which existing records carry the
   most responsibility for supply being up.

Usage::

    python examples/whatif_analysis.py
"""

from repro import Database, parse_query
from repro.algebra.counting import CountingSemiring
from repro.core.grouped import evaluate_grouped
from repro.db.evaluation import count_satisfying_assignments
from repro.problems.bagset_max import BagSetInstance, optimal_repair
from repro.problems.resilience import (
    ResilienceInstance,
    contingency_set,
    resilience,
)
from repro.problems.shapley import ShapleyInstance, shapley_values


def build_database() -> Database:
    return Database.from_relations(
        {
            "Vendor": [("acme", "east"), ("bolt", "west")],
            "Contract": [("acme", "gear"), ("acme", "axle"), ("bolt", "gear")],
            "Shipment": [
                ("acme", "gear", "w1"),
                ("acme", "gear", "w2"),
                ("acme", "axle", "w1"),
                ("bolt", "gear", "w3"),
            ],
        }
    )


def build_menu() -> Database:
    return Database.from_relations(
        {
            "Contract": [("bolt", "axle")],
            "Shipment": [
                ("bolt", "axle", "w3"),
                ("bolt", "gear", "w4"),
                ("acme", "axle", "w2"),
            ],
        }
    )


def main() -> None:
    query = parse_query(
        "Supplied() :- Vendor(V, R), Contract(V, P), Shipment(V, P, W)"
    )
    database = build_database()
    print(f"query: {query}")
    print(f"database: {len(database)} facts; "
          f"bag-set value Q(D) = {count_satisfying_assignments(query, database)}")
    print()

    print("1. per-vendor answer counts (free variable V, counting semiring):")
    grouped = evaluate_grouped(
        query, {"V"}, CountingSemiring(), database.facts(), lambda _f: 1
    )
    for values, count in sorted(grouped.items()):
        print(f"   V = {values[0]!r}: {count} supported combinations")
    print()

    print("2. fragility (resilience 2-monoid):")
    instance = ResilienceInstance.fully_endogenous(database)
    value = resilience(query, instance)
    cut = contingency_set(query, instance)
    print(f"   resilience = {int(value)} deletions break all supply")
    print(f"   a minimum cut: {sorted(str(f) for f in cut)}")
    print()

    print("3. repair planning (bag-set 2-monoid, budget 2):")
    repair_instance = BagSetInstance(database, build_menu(), budget=2)
    best, added = optimal_repair(query, repair_instance)
    print(f"   best achievable bag-set value: {best}")
    print("   sign these records:")
    for fact in sorted(added, key=repr):
        print(f"     + {fact}")
    print()

    print("4. attribution (Shapley values; Vendor records exogenous):")
    shapley_instance = ShapleyInstance(
        exogenous=database.restrict(["Vendor"]),
        endogenous=database.restrict(["Contract", "Shipment"]),
    )
    values = shapley_values(query, shapley_instance)
    ranked = sorted(values.items(), key=lambda kv: (-kv[1], repr(kv[0])))
    for fact, value in ranked[:5]:
        print(f"   {str(fact):<28} {value}")
    print()
    print("one elimination plan, four answers — the 2-monoid is the only "
          "thing that changed.")


if __name__ == "__main__":
    main()
