"""Probabilistic query evaluation on an unreliable sensor network.

Scenario: a monitoring deployment stores which *zones* each gateway covers
and which *sensors* report into each gateway.  Hardware is flaky, so each
fact is present only with a probability (a tuple-independent probabilistic
database).  The operations question — "what is the probability that some
zone has a gateway with at least one live sensor?" — is the hierarchical
query

    Alive() :- Covers(G, Z) ∧ Reports(G, S')

(hierarchical because at(Z) ⊆ at(G) ⊇ at(S')).  Algorithm 1 with the
probability 2-monoid answers it in linear time; the script cross-checks
against exact possible-world enumeration and shows the exponential baseline
blowing up.

Usage::

    python examples/probabilistic_sensors.py
"""

import random
import time
from fractions import Fraction

from repro import (
    ProbabilisticDatabase,
    marginal_probability,
    marginal_probability_brute_force,
    parse_query,
)
from repro.db.fact import Fact


def build_network(
    gateways: int, zones_per_gateway: int, sensors_per_gateway: int, seed: int
) -> ProbabilisticDatabase:
    """Random coverage/reporting facts with heterogeneous reliabilities."""
    rng = random.Random(seed)
    probabilities = {}
    for gateway in range(gateways):
        for zone in rng.sample(range(100), zones_per_gateway):
            probabilities[Fact("Covers", (gateway, zone))] = Fraction(
                rng.randint(40, 85), 100
            )
        for sensor in rng.sample(range(1000), sensors_per_gateway):
            probabilities[Fact("Reports", (gateway, sensor))] = Fraction(
                rng.randint(2, 20), 100
            )
    return ProbabilisticDatabase(probabilities)


def main() -> None:
    query = parse_query("Alive() :- Covers(G, Z), Reports(G, S)")
    print(f"query: {query} (hierarchical)")
    print()

    print("exact agreement with possible-world enumeration (small network):")
    small = build_network(
        gateways=2, zones_per_gateway=2, sensors_per_gateway=2, seed=1
    )
    unified = marginal_probability(query, small, exact=True)
    brute = marginal_probability_brute_force(query, small, exact=True)
    print(f"  unified algorithm : {unified}")
    print(f"  brute force       : {brute}")
    assert unified == brute
    print()

    print("scaling (the brute force enumerates 2^|D| worlds):")
    print(f"{'|D|':>6} | {'unified [s]':>12} | {'brute force [s]':>16}")
    for gateways, sensors in ((2, 2), (2, 4), (3, 4)):
        network = build_network(gateways, 2, sensors, seed=gateways)
        start = time.perf_counter()
        marginal_probability(query, network)
        unified_time = time.perf_counter() - start
        start = time.perf_counter()
        marginal_probability_brute_force(query, network)
        brute_time = time.perf_counter() - start
        print(f"{len(network):>6} | {unified_time:>12.5f} | {brute_time:>16.5f}")
    print()

    print("larger network (brute force would need 2^|D| world evaluations):")
    big = build_network(
        gateways=6, zones_per_gateway=2, sensors_per_gateway=4, seed=7
    )
    start = time.perf_counter()
    probability = marginal_probability(query, big)
    elapsed = time.perf_counter() - start
    print(
        f"  |D| = {len(big)} facts → P[Alive] = {float(probability):.6f} "
        f"in {elapsed:.4f}s"
    )


if __name__ == "__main__":
    main()
