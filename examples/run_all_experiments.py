"""Regenerate every EXPERIMENTS.md table (E0–E11) in one run.

Usage::

    python examples/run_all_experiments.py            # all experiments
    python examples/run_all_experiments.py E0 E5 E11  # a subset
"""

import sys
import time

from repro.bench.experiments import ALL_EXPERIMENTS


def main(argv: list[str]) -> None:
    requested = argv or list(ALL_EXPERIMENTS)
    unknown = [name for name in requested if name not in ALL_EXPERIMENTS]
    if unknown:
        raise SystemExit(
            f"unknown experiment id(s) {unknown}; "
            f"available: {', '.join(ALL_EXPERIMENTS)}"
        )
    for name in requested:
        start = time.perf_counter()
        result = ALL_EXPERIMENTS[name]()
        elapsed = time.perf_counter() - start
        print(result.render())
        print(f"   ({elapsed:.2f}s)")
        print()


if __name__ == "__main__":
    main(sys.argv[1:])
