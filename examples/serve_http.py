"""Operating the serving stack over HTTP: queries, streams, metrics.

Scenario: the sensor fleet from ``probabilistic_sensors.py`` goes into
production.  Operations wants three things the Python API alone doesn't
give them — a network endpoint other services can POST queries to, a
``/metrics`` page Prometheus can scrape, and a health probe for the load
balancer.  This script stands up the full stack in-process:

1. a :class:`~repro.serve.server.Server` (scheduler, admission control,
   session memo) over one probabilistic database,
2. an :class:`~repro.serve.http.HttpFrontend` — the stdlib-asyncio HTTP
   layer — on an ephemeral port,

then plays the operations day: a mixed workload over ``POST /v1/query``
(including a bindings sweep that the scheduler fuses into one shared
scan), a ``POST /v1/stream`` request answered as NDJSON in completion
order, a ``GET /healthz`` probe, and finally a ``GET /metrics`` scrape
parsed back with :func:`repro.obs.parse_exposition` to print the
request/memo/tier counters a dashboard would chart.

Usage::

    python examples/serve_http.py
"""

import json
import random
import urllib.request
from fractions import Fraction

from repro import ProbabilisticDatabase, Server, parse_query
from repro.db.fact import Fact
from repro.obs import parse_exposition
from repro.serve.http import HttpFrontend


def build_fleet(gateways: int, seed: int) -> ProbabilisticDatabase:
    """Random coverage/reporting facts with heterogeneous reliabilities."""
    rng = random.Random(seed)
    probabilities = {}
    for gateway in range(gateways):
        for zone in rng.sample(range(50), 3):
            probabilities[Fact("Covers", (gateway, zone))] = Fraction(
                rng.randint(40, 85), 100
            )
        for sensor in rng.sample(range(200), 4):
            probabilities[Fact("Reports", (gateway, sensor))] = Fraction(
                rng.randint(10, 60), 100
            )
    return ProbabilisticDatabase(probabilities)


def post(url: str, payload: dict) -> tuple[int, str]:
    """POST *payload* as JSON; return (status, body text)."""
    body = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=body, headers={"Content-Type": "application/json"}
    )
    with urllib.request.urlopen(request, timeout=60) as response:
        return response.status, response.read().decode("utf-8")


def get(url: str) -> tuple[int, str]:
    """GET *url*; return (status, body text)."""
    with urllib.request.urlopen(url, timeout=60) as response:
        return response.status, response.read().decode("utf-8")


def main() -> None:
    query = parse_query("Alive() :- Covers(G, Z), Reports(G, S)")
    fleet = build_fleet(gateways=6, seed=7)
    print(f"query: {query}")
    print(f"fleet: {len(fleet)} probabilistic facts")
    print()

    with Server(query, probabilistic=fleet, workers=4) as server:
        with HttpFrontend(server).start() as frontend:
            print(f"serving on {frontend.url}")

            # -- the load balancer's probe ----------------------------
            status, body = get(frontend.url + "/healthz")
            health = json.loads(body)
            print(f"GET /healthz -> {status} ok={health['ok']} "
                  f"workers={health['workers']}")
            print()

            # -- one-off queries over POST /v1/query ------------------
            status, body = post(frontend.url + "/v1/query", {
                "requests": [
                    {"family": "pqe"},
                    {"family": "pqe"},            # coalesces / memo-hits
                    {"family": "expected_count"},
                ],
            })
            payload = json.loads(body)
            print(f"POST /v1/query -> {status} "
                  f"({len(payload['results'])} results, "
                  f"{payload['failed']} failed)")
            for entry in payload["results"]:
                print(f"  {entry['request']} = {entry['value']}")
            print()

            # -- a bindings sweep, streamed as NDJSON -----------------
            gateways = sorted({
                fact.values[0]
                for fact in fleet.support_database().facts()
                if fact.relation == "Covers"
            })
            status, body = post(frontend.url + "/v1/stream", {
                "family": "pqe",
                "bindings": [{"G": gateway} for gateway in gateways],
            })
            lines = [json.loads(line) for line in body.splitlines() if line]
            print(f"POST /v1/stream -> {status} "
                  f"(per-gateway sweep, {len(lines)} NDJSON lines, "
                  "completion order)")
            for entry in sorted(lines, key=lambda e: e["index"]):
                print(f"  [{entry['index']}] {entry['request']} = "
                      f"{entry['value']}")
            print()

            # -- the Prometheus scrape --------------------------------
            status, text = get(frontend.url + "/metrics")
            parsed = parse_exposition(text)
            print(f"GET /metrics -> {status} "
                  f"({len(text.splitlines())} exposition lines)")

            def total(name: str) -> float:
                return sum(
                    value for (sample, _labels), value in parsed.items()
                    if sample == name
                )

            ok = sum(
                value for (name, labels), value in parsed.items()
                if name == "repro_requests_total"
                and ("outcome", "ok") in labels
            )
            print(f"  requests ok:       {ok:.0f}")
            print(f"  latency samples:   "
                  f"{total('repro_request_latency_seconds_count'):.0f}")
            print(f"  memo hits/misses:  "
                  f"{total('repro_memo_hits_total'):.0f}/"
                  f"{total('repro_memo_misses_total'):.0f}")
            print(f"  fused queries:     "
                  f"{total('repro_session_fused_queries_total'):.0f}")
            print(f"  queue depth now:   {total('repro_queue_depth'):.0f}")

    print()
    print("front-end closed; scheduler drained")


if __name__ == "__main__":
    main()
