"""Quickstart: the paper's Figure 1 instance, solved three ways.

Runs the unifying algorithm (Algorithm 1) on the same hierarchical query

    Q() :- R(A,B) ∧ S(A,C) ∧ T(A,C,D)                       (Eq. 1)

under the three 2-monoid instantiations of the paper:

1. Bag-Set Maximization on the exact Figure 1 instance (answer: 4),
2. Probabilistic Query Evaluation with every fact at probability 1/2,
3. Shapley value computation with the S facts exogenous.

Usage::

    python examples/quickstart.py
"""

from fractions import Fraction

from repro import (
    BagSetInstance,
    Database,
    ProbabilisticDatabase,
    ShapleyInstance,
    compile_plan,
    marginal_probability,
    maximize,
    maximize_profile,
    parse_query,
    shapley_values,
)
from repro.core.render import render_rules
from repro.query.elimination import eliminate


def main() -> None:
    query = parse_query("Q() :- R(A,B), S(A,C), T(A,C,D)")
    print(f"query: {query}")
    print()

    print("-- the elimination procedure (Example 5.2) --")
    print(eliminate(query))
    print()
    print("-- the compiled plan Algorithm 1 executes (cf. Eqs. 4-9) --")
    print(render_rules(compile_plan(query)))
    print()

    # The Figure 1 instance.
    database = Database.from_relations(
        {"R": [(1, 5)], "S": [(1, 1), (1, 2)], "T": [(1, 2, 4)]}
    )
    repair = Database.from_relations(
        {"R": [(1, 6), (1, 7)], "T": [(1, 1, 4), (1, 2, 9)]}
    )

    print("-- 1. Bag-Set Maximization (Figure 1, θ = 2) --")
    instance = BagSetInstance(database, repair, budget=2)
    print(f"optimal Q(D') within budget 2: {maximize(query, instance)}  (paper: 4)")
    print(f"budget profile q(0..2): {maximize_profile(query, instance)}")
    print()

    print("-- 2. Probabilistic Query Evaluation (every fact at 1/2) --")
    pdb = ProbabilisticDatabase(
        {fact: Fraction(1, 2) for fact in database.union(repair).facts()}
    )
    probability = marginal_probability(query, pdb, exact=True)
    print(f"P[Q] over possible worlds: {probability} ≈ {float(probability):.4f}")
    print()

    print("-- 3. Shapley values (S facts exogenous, R and T endogenous) --")
    shapley_instance = ShapleyInstance(
        exogenous=database.restrict(["S"]),
        endogenous=database.restrict(["R", "T"]),
    )
    for fact, value in sorted(
        shapley_values(query, shapley_instance).items(), key=lambda kv: repr(kv[0])
    ):
        print(f"Shapley({fact}) = {value}")


if __name__ == "__main__":
    main()
