"""Shapley values as answer explanations: which facts drive a query result?

Scenario: a compliance team asks why the audit query

    Flag() :- Account(A, O) ∧ Transfer(A, T) ∧ Detail(A, T, F)

fires on a banking database.  Reference tables (``Account``) are exogenous —
nobody disputes them — while the transaction facts (``Transfer``,
``Detail``) are endogenous.  The Shapley value of each endogenous fact
quantifies its responsibility for the flag (Definition 5.12); the unified
algorithm computes it exactly via two #Sat vectors per fact (Theorem 5.16).

The script prints the ranked attribution, verifies the Shapley axioms
numerically, and shows Monte Carlo permutation sampling converging to the
exact values.

Usage::

    python examples/shapley_explanations.py
"""

from fractions import Fraction

from repro import (
    Database,
    ShapleyInstance,
    evaluates_true,
    parse_query,
    sat_counts,
    shapley_values,
)
from repro.problems.shapley import (
    efficiency_gap,
    shapley_value_monte_carlo,
)


def build_instance() -> ShapleyInstance:
    accounts = Database.from_relations(
        {"Account": [("acme", "owner1"), ("bolt", "owner2")]}
    )
    transactions = Database.from_relations(
        {
            "Transfer": [("acme", "t1"), ("acme", "t2"), ("bolt", "t9")],
            "Detail": [
                ("acme", "t1", "offshore"),
                ("acme", "t2", "offshore"),
                ("acme", "t2", "cash"),
                # bolt's transfer has no matching detail: a null player.
            ],
        }
    )
    return ShapleyInstance(exogenous=accounts, endogenous=transactions)


def main() -> None:
    query = parse_query("Flag() :- Account(A, O), Transfer(A, T), Detail(A, T, F)")
    instance = build_instance()
    print(f"query: {query}")
    print(f"exogenous facts: {len(instance.exogenous)}, "
          f"endogenous facts: {instance.endogenous_count}")
    full = instance.full_database()
    print(f"query fires on the full database: {evaluates_true(query, full)}")
    print()

    counts = sat_counts(query, instance)
    print(f"#Sat(k) for k = 0..{instance.endogenous_count}: {counts}")
    print("(number of size-k endogenous subsets that make the flag fire)")
    print()

    values = shapley_values(query, instance)
    print("responsibility ranking (exact Shapley values):")
    for fact, value in sorted(values.items(), key=lambda kv: (-kv[1], repr(kv[0]))):
        bar = "#" * int(40 * value) if value > 0 else ""
        print(f"  {str(fact):<32} {str(value):>8}  {bar}")
    print()

    print("axiom checks:")
    total = sum(values.values(), Fraction(0))
    print(f"  efficiency: Σ Shapley = {total} "
          f"(gap = {efficiency_gap(query, instance)})")
    null_players = [f for f, v in values.items() if v == 0]
    print(f"  null players (zero responsibility): "
          f"{[str(f) for f in null_players]}")
    print()

    top_fact = max(values, key=lambda f: (values[f], repr(f)))
    exact = float(values[top_fact])
    print(f"Monte Carlo convergence for {top_fact} (exact = {exact:.5f}):")
    for samples in (10, 100, 1000, 10000):
        estimate = shapley_value_monte_carlo(
            query, instance, top_fact, samples=samples, seed=0
        )
        print(f"  {samples:>6} samples → {estimate:.5f} "
              f"(error {abs(estimate - exact):.5f})")


if __name__ == "__main__":
    main()
