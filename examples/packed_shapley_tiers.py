"""The packed columnar tier on an E6-style Shapley workload, tier by tier.

The Shapley/``#Sat`` 2-monoid carries *vectors* — degree-indexed exact
integer polynomials — which the columnar array tier historically declined,
leaving the paper's flagship attribution workload on the batched kernels.
The packed columnar tier closes that gap: a relation's annotations become
one trimmed ``(n, 2, w)`` int64 array (one row per fact, the false/true
slices along the middle axis), ψ-spike ⊕-folds reduce to per-slot
``reduceat`` counting, ⊗ runs as batched sliding-window convolutions, and
rows whose coefficients outgrow int64 route through the Kronecker kernel's
packed-operand caches — exactly, so every tier returns bit-identical
``#Sat`` vectors.

This script builds an E6-style instance (a 2-branch star query over a
random exogenous/endogenous split, like ``repro bench E6``), runs the full
``#Sat`` computation once per execution tier, verifies the answers agree
bit-for-bit, and prints the timings — the packed tier is typically 2–3×
the batched kernels and well over 100× the scalar baseline on the largest
configuration.

Usage::

    python examples/packed_shapley_tiers.py [endogenous_count]
"""

import sys
import time

from repro.algebra.shapley import ShapleyMonoid
from repro.bench.experiments import _split_instance
from repro.core.algorithm import execute_plan
from repro.core.kernels import array_kernel_for, numpy_or_none
from repro.core.plan import compile_plan
from repro.db.annotated import KDatabase
from repro.problems.shapley import annotation_psi
from repro.query.families import star_query


def best_of(run, repeats: int = 5) -> float:
    """Best wall time of *repeats* runs (seconds) — amortized-cache timing."""
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - started)
    return best


def main() -> None:
    endogenous = int(sys.argv[1]) if len(sys.argv) > 1 else 192
    query = star_query(2)
    instance = _split_instance(
        query, exogenous=40, endogenous=endogenous, seed=endogenous
    )
    monoid = ShapleyMonoid(instance.endogenous_count + 1)
    facts = [*instance.exogenous.facts(), *instance.endogenous.facts()]

    # One ψ-annotated database serves every tier: the tiers differ only in
    # how the elimination steps execute, never in what they compute.
    annotated = KDatabase.annotate(
        query, monoid, facts, annotation_psi(instance, monoid)
    )
    plan = compile_plan(query)
    print(f"query: {query}")
    print(
        f"|Dx|={len(instance.exogenous)}, |Dn|={instance.endogenous_count} "
        f"(#Sat vectors have {monoid.length} budget slots)"
    )

    tiers = ["scalar", "batched"]
    if numpy_or_none() is not None:
        tiers.append("array")
        kernel = array_kernel_for(monoid)
        print(f"array tier kernel: {kernel!r} (packed 2-D rows)")
    else:
        print("numpy not installed: the array tier would fall back, skipping")

    results, timings = {}, {}
    for tier in tiers:
        run = lambda tier=tier: execute_plan(
            plan, annotated, kernel_mode=tier
        ).result
        results[tier] = run()  # warm caches and columnar views first
        timings[tier] = best_of(run)

    baseline = results["scalar"]
    print(f"\n#Sat(k) head: {baseline.true_counts[:5]} ...")
    print(f"{'tier':<10} {'kernel time':>12} {'vs scalar':>10} {'identical':>10}")
    for tier in tiers:
        identical = results[tier] == baseline
        speedup = timings["scalar"] / timings[tier]
        print(
            f"{tier:<10} {timings[tier] * 1e3:>10.2f}ms "
            f"{speedup:>9.1f}x {str(identical):>10}"
        )
        assert identical, f"tier {tier} diverged from the scalar baseline"
    if "array" in timings:
        ratio = timings["batched"] / timings["array"]
        print(f"\npacked columnar vs batched: {ratio:.1f}x")


if __name__ == "__main__":
    main()
